"""The concurrency analyzer on seeded defects: each mutant dies to its rule.

The harness is a mutation suite: every fixture seeds exactly one concurrency
defect — a dropped ``with``, a branch that skips the lock, a swapped
acquisition order, an unpaired seqlock bump, an in-place snapshot mutation, a
blocking call under a lock — and the test asserts the analyzer reports it
under *exactly* the intended rule (no finding bleeding into a neighbour rule,
no silence).  Clean counterparts pin the non-findings: condition waits,
copy-on-write rebinds, ``# holds:`` helpers, pinned unguarded attributes and
inline suppressions must all stay quiet.  A Hypothesis property then
generates well-locked synthetic classes (and their lock-dropping mutants) to
check the same contract over a much wider shape space, and a self-hosting
gate runs the full rule set over ``src/repro`` with no baseline.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.concurrency import (
    CONCURRENCY_RULES,
    analyze_module,
    collect_guard_map,
)
from repro.analysis.lint import lint_paths, parse_module

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
REPO_SRC = REPO_ROOT / "src"


def _race_check(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], CONCURRENCY_RULES)


# -- the mutation corpus: one seeded defect per fixture ----------------------------

_DEFECTS = [
    pytest.param(
        """
        import threading

        class DroppedWith:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def add(self, n):
                with self._lock:
                    self._count += n

            def reset(self):
                with self._lock:
                    self._count = 0

            def peek(self):
                return self._count      # DEFECT: read without the inferred guard
        """,
        "CONC001",
        "read of self._count without holding self._lock (inferred guard)",
        id="conc001-dropped-with-read",
    ),
    pytest.param(
        """
        import threading

        class BranchLeak:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def add(self, n):
                with self._lock:
                    self._count += n

            def toggle(self, fast):
                if fast:
                    self._count += 1    # DEFECT: this branch skips the lock
                else:
                    with self._lock:
                        self._count += 1
        """,
        "CONC001",
        "BranchLeak.toggle: write of self._count without holding self._lock",
        id="conc001-branch-skips-lock",
    ),
    pytest.param(
        """
        import threading

        class PinnedGuard:
            def __init__(self):
                self._lock = threading.Lock()
                self._mostly_unlocked = 0  # guarded-by: self._lock

            def sneak(self):
                self._mostly_unlocked = 1   # DEFECT: annotation pins the guard

            def also(self):
                self._mostly_unlocked = 2   # DEFECT: majority would say unguarded
        """,
        "CONC001",
        "without holding self._lock (annotated guard)",
        id="conc001-annotated-pin",
    ),
    pytest.param(
        """
        import threading

        class WritesOnly:
            def __init__(self):
                self._lock = threading.Lock()
                self._version = 0  # guarded-by: self._lock, writes

            def bump(self):
                self._version += 1      # DEFECT: writes need the lock

            def peek(self):
                return self._version    # clean: reads are the lock-free side
        """,
        "CONC001",
        "WritesOnly.bump: write of self._version without holding self._lock",
        id="conc001-writes-only-mode",
    ),
    pytest.param(
        """
        import threading

        class SwappedOrder:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:       # DEFECT: opposite order -> deadlock
                        pass
        """,
        "CONC002",
        "lock-order cycle self._a -> self._b -> self._a",
        id="conc002-order-cycle",
    ),
    pytest.param(
        """
        import threading

        class SelfDeadlock:
            def __init__(self):
                self._lock = threading.Lock()

            def outer(self):
                with self._lock:
                    with self._lock:    # DEFECT: Lock() is not reentrant
                        pass
        """,
        "CONC002",
        "re-acquisition of non-reentrant self._lock (self-deadlock)",
        id="conc002-self-deadlock",
    ),
    pytest.param(
        """
        import threading

        class UnpairedBump:
            def __init__(self):
                self._lock = threading.RLock()
                self._epoch = 0  # seqlock: self._lock
                self._value = 0

            def commit(self, v):
                with self._lock:
                    self._epoch += 1    # DEFECT: no try/finally closing bump
                    self._value = v
        """,
        "CONC003",
        "unpaired seqlock bump of self._epoch",
        id="conc003-unpaired-bump",
    ),
    pytest.param(
        """
        import threading

        class NonIncrement:
            def __init__(self):
                self._lock = threading.RLock()
                self._epoch = 0  # seqlock: self._lock

            def clobber(self):
                with self._lock:
                    self._epoch = 4     # DEFECT: can skip the odd state
        """,
        "CONC003",
        "seqlock epoch self._epoch must only be bumped with '+= 1'",
        id="conc003-non-increment-write",
    ),
    pytest.param(
        """
        import threading

        class BumpNoLock:
            def __init__(self):
                self._lock = threading.RLock()
                self._epoch = 0  # seqlock: self._lock
                self._value = 0

            def commit(self, v):
                self._epoch += 1        # DEFECT: bump without the writer lock
                try:
                    self._value = v
                finally:
                    self._epoch += 1
        """,
        "CONC003",
        "seqlock bump of self._epoch without holding self._lock",
        id="conc003-bump-without-lock",
    ),
    pytest.param(
        """
        import threading

        class WindowHygiene:
            def __init__(self):
                self._lock = threading.RLock()
                self._epoch = 0  # seqlock: self._lock
                self._value = 0

            def commit(self, v):
                with self._lock:
                    self._epoch += 1
                    try:
                        self._value = v
                    finally:
                        self._epoch += 1

            def sneak(self, v):
                with self._lock:
                    self._value = v     # DEFECT: published state, no window
        """,
        "CONC003",
        "write of self._value outside the self._epoch seqlock window",
        id="conc003-window-hygiene",
    ),
    pytest.param(
        """
        class SubscriptStore:
            def __init__(self):
                self._buckets = {}  # published-snapshot

            def poke(self, key, rows):
                self._buckets[key] = rows   # DEFECT: in-place store
        """,
        "CONC004",
        "in-place mutation of published snapshot self._buckets",
        id="conc004-subscript-store",
    ),
    pytest.param(
        """
        class DeepAppend:
            def __init__(self):
                self._buckets = {}  # published-snapshot

            def deep(self, key, row):
                self._buckets[key].append(row)  # DEFECT: mutates shared bucket
        """,
        "CONC004",
        "in-place mutation of published snapshot self._buckets",
        id="conc004-deep-append",
    ),
    pytest.param(
        """
        import threading
        import time

        class SleepUnderLock:
            def __init__(self):
                self._lock = threading.Lock()

            def slow(self):
                with self._lock:
                    time.sleep(0.5)     # DEFECT: blocks every other holder
        """,
        "CONC005",
        "blocking call time.sleep() while holding self._lock",
        id="conc005-sleep-under-lock",
    ),
    pytest.param(
        """
        import threading

        class EventWait:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Event()

            def stall(self):
                with self._lock:
                    self._ready.wait()  # DEFECT: waits on a non-held primitive
        """,
        "CONC005",
        "blocking call self._ready.wait() while holding self._lock",
        id="conc005-event-wait-under-lock",
    ),
    pytest.param(
        """
        import threading

        class QueueTake:
            def __init__(self):
                self._lock = threading.Lock()
                self._inbox = None

            def drain(self):
                with self._lock:
                    return self._inbox.get(timeout=1.0)  # DEFECT: queue take
        """,
        "CONC005",
        "blocking call self._inbox.get() while holding self._lock",
        id="conc005-queue-get-under-lock",
    ),
]


@pytest.mark.parametrize("source, rule, fragment", _DEFECTS)
def test_seeded_defect_dies_to_exactly_its_rule(tmp_path, source, rule, fragment):
    findings = _race_check(tmp_path, source)
    assert findings, "seeded defect was not detected"
    # Exactly the intended rule: no silence, and no bleed into neighbours.
    assert {f.rule for f in findings} == {rule}
    assert any(fragment in f.message for f in findings), [f.message for f in findings]


def test_writes_only_mode_reports_the_write_not_the_read(tmp_path):
    _, rule, _ = _DEFECTS[3].values
    assert rule == "CONC001"
    findings = _race_check(tmp_path, _DEFECTS[3].values[0])
    assert len(findings) == 1 and "write" in findings[0].message


# -- clean counterparts: the analyzer must stay quiet ------------------------------

_CLEAN = [
    pytest.param(
        """
        import threading

        class TryFinally:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def add(self, n):
                self._lock.acquire()
                try:
                    self._count += n
                finally:
                    self._lock.release()

            def sub(self, n):
                with self._lock:
                    self._count -= n
        """,
        id="explicit-acquire-release",
    ),
    pytest.param(
        """
        import threading

        class CondWait:
            def __init__(self):
                self._cond = threading.Condition()
                self._ready = False

            def await_ready(self):
                with self._cond:
                    while not self._ready:
                        self._cond.wait()   # waiting on the held condition: fine

            def mark(self):
                with self._cond:
                    self._ready = True
                    self._cond.notify_all()
        """,
        id="condition-wait-exempt",
    ),
    pytest.param(
        """
        import threading

        class CopyOnWrite:
            def __init__(self):
                self._lock = threading.Lock()
                self._snap = {}  # published-snapshot

            def publish(self, key, rows):
                with self._lock:
                    fresh = dict(self._snap)
                    fresh[key] = rows
                    self._snap = fresh      # rebinding IS the CoW publish

            def read(self, key):
                return self._snap.get(key)  # lock-free snapshot read
        """,
        id="cow-rebind-is-clean",
    ),
    pytest.param(
        """
        import threading

        class Seqlock:
            def __init__(self):
                self._lock = threading.RLock()
                self._epoch = 0  # seqlock: self._lock
                self._value = 0  # guarded-by: self._lock, writes

            def commit(self, v):
                with self._lock:
                    self._epoch += 1
                    try:
                        self._value = v
                    finally:
                        self._epoch += 1

            def peek(self):
                return self._epoch, self._value  # lock-free reader side
        """,
        id="paired-seqlock",
    ),
    pytest.param(
        """
        import threading

        class CallerHeld:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def add(self, n):
                with self._lock:
                    self._add_locked(n)

            def _add_locked(self, n):  # holds: self._lock
                self._count += n
        """,
        id="holds-annotation",
    ),
    pytest.param(
        """
        from repro.util.rwlock import ReadWriteLock

        class Versioned:
            def __init__(self):
                self._rw = ReadWriteLock()
                self._version = 0

            def bump(self):
                with self._rw.write():
                    self._version += 1

            def read(self):
                with self._rw.read():
                    return self._version
        """,
        id="rwlock-sides",
    ),
    pytest.param(
        """
        class Pinned:
            def __init__(self):
                # guarded-by: none — idempotent memo, racing writers agree
                self._memo = {}

            def get(self, key):
                cached = self._memo.get(key)
                if cached is None:
                    cached = self._memo[key] = key * 2
                return cached
        """,
        id="pinned-unguarded",
    ),
    pytest.param(
        """
        import threading

        class Suppressed:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def add(self, n):
                with self._lock:
                    self._count += n

            def reset(self):
                with self._lock:
                    self._count = 0

            def peek(self):
                return self._count  # repro-lint: disable=CONC001 torn-read tolerated
        """,
        id="inline-suppression",
    ),
]


@pytest.mark.parametrize("source", _CLEAN)
def test_clean_counterpart_stays_quiet(tmp_path, source):
    assert _race_check(tmp_path, source) == []


# -- guard map ---------------------------------------------------------------------

def test_guard_map_records_inference_annotation_and_protocols(tmp_path):
    path = tmp_path / "svc.py"
    path.write_text(
        textwrap.dedent(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._rows = []
                    self._epoch = 0  # seqlock: self._lock
                    self._snap = {}  # published-snapshot
                    self._stamp = 0  # guarded-by: self._lock, writes

                def add(self, row):
                    with self._lock:
                        self._rows.append(row)
                        self._stamp += 1
                        self._epoch += 1
                        try:
                            self._snap = {"rows": len(self._rows)}
                        finally:
                            self._epoch += 1
            """
        )
    )
    entries = {e["attr"]: e for e in collect_guard_map([path])}
    assert entries["_rows"]["guard"] == "self._lock"
    assert entries["_rows"]["source"] == "inferred"
    assert entries["_stamp"]["source"] == "annotated"
    assert entries["_stamp"]["protocol"] == "writes only (lock-free reads)"
    assert entries["_epoch"]["protocol"] == "seqlock (writes)"
    assert entries["_snap"]["protocol"] == "copy-on-write snapshot"


# -- Hypothesis: well-locked synthetic classes and their lock-dropping mutants -----

_ATTRS = st.lists(
    st.sampled_from(["_count", "_total", "_rows", "_state", "_pending"]),
    min_size=1,
    max_size=3,
    unique=True,
)
# At least four methods: the mutation property strips the lock from one, and
# the guard must still be the strict majority over the remaining accesses
# (an "if" shape carries two accesses, so three methods can tie at 50%).
_SHAPES = st.lists(
    st.sampled_from(["plain", "if", "loop", "try"]), min_size=4, max_size=6
)


def _guarded_method(name, attrs, shape):
    writes = "\n".join(f"            self.{attr} += 1" for attr in attrs)
    inner = {
        "plain": writes,
        "if": f"            if self.{attrs[0]} > 0:\n    {writes.replace(chr(10), chr(10) + '    ')}",
        "loop": f"            for _ in range(2):\n    {writes.replace(chr(10), chr(10) + '    ')}",
        "try": f"            try:\n    {writes.replace(chr(10), chr(10) + '    ')}\n            finally:\n                pass",
    }[shape]
    return f"    def {name}(self):\n        with self._lock:\n{inner}\n"


@st.composite
def _locked_classes(draw):
    attrs = draw(_ATTRS)
    shapes = draw(_SHAPES)
    inits = "\n".join(f"        self.{attr} = 0" for attr in attrs)
    methods = "".join(
        _guarded_method(f"method_{i}", attrs, shape) for i, shape in enumerate(shapes)
    )
    source = (
        "import threading\n\n"
        "class Generated:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        f"{inits}\n\n"
        f"{methods}"
    )
    return source, attrs, len(shapes)


@settings(max_examples=25, deadline=None)
@given(_locked_classes())
def test_generated_well_locked_classes_are_clean(tmp_path_factory, case):
    source, _attrs, _n = case
    tmp_path = tmp_path_factory.mktemp("hyp")
    assert _race_check(tmp_path, source) == []


@settings(max_examples=25, deadline=None)
@given(_locked_classes(), st.data())
def test_dropping_one_with_block_dies_to_conc001(tmp_path_factory, case, data):
    source, attrs, n_methods = case
    victim = data.draw(st.integers(min_value=0, max_value=n_methods - 1))
    # Mutate: strip the lock from one method by renaming its with-target to a
    # fresh (non-lock) context manager, leaving every access in place.
    needle = f"    def method_{victim}(self):\n        with self._lock:"
    assert needle in source
    mutated = source.replace(
        needle, f"    def method_{victim}(self):\n        with open('/dev/null'):"
    )
    tmp_path = tmp_path_factory.mktemp("hyp")
    findings = _race_check(tmp_path, mutated)
    # The majority of accesses stay locked, so every stripped access is a
    # CONC001 finding against the still-inferred guard — and nothing else.
    assert findings and {f.rule for f in findings} == {"CONC001"}
    assert all(f"method_{victim}" in f.message for f in findings)
    assert all(any(attr in f.message for attr in attrs) for f in findings)


# -- self-hosting gate -------------------------------------------------------------

def test_races_self_hosts_clean_over_src():
    findings = lint_paths([REPO_SRC / "repro"], CONCURRENCY_RULES)
    assert findings == [], [f"{f.path}:{f.line} {f.rule} {f.message}" for f in findings]


def test_analysis_is_cached_per_module(tmp_path):
    path = tmp_path / "m.py"
    path.write_text("class C:\n    pass\n")
    module = parse_module(path)
    assert analyze_module(module) is analyze_module(module)
