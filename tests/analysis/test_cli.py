"""The ``python -m repro.analysis`` entry point: exit codes and output shape."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.__main__ import main

REPO_SRC = Path(__file__).resolve().parent.parent.parent / "src"


def _violating_tree(tmp_path):
    target = tmp_path / "core" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("def bad():\n    raise ValueError('x')\n")
    return tmp_path


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("def fine():\n    return 1\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_findings_exit_one_and_render(tmp_path, capsys):
    assert main(["lint", str(_violating_tree(tmp_path))]) == 1
    out = capsys.readouterr().out
    assert "REPRO004" in out and "1 finding(s)" in out


def test_lint_missing_path_is_usage_error(capsys):
    assert main(["lint", "/no/such/dir"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_write_baseline_then_lint_against_it(tmp_path, capsys):
    tree = _violating_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(tree), "--write-baseline", str(baseline)]) == 0
    assert baseline.exists()

    # The acknowledged finding no longer fails the lint...
    assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # ...but a stale entry does, once the violation is fixed.
    (tree / "core" / "mod.py").write_text("def good():\n    return 1\n")
    assert main(["lint", str(tree), "--baseline", str(baseline)]) == 1
    assert "stale" in capsys.readouterr().out


def test_lint_src_self_hosts(capsys):
    assert main(["lint", str(REPO_SRC)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def _racy_tree(tmp_path):
    target = tmp_path / "svc.py"
    target.write_text(
        "import threading\n\n"
        "class Svc:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n\n"
        "    def add(self):\n"
        "        with self._lock:\n"
        "            self._n += 1\n\n"
        "    def sub(self):\n"
        "        with self._lock:\n"
        "            self._n -= 1\n\n"
        "    def peek(self):\n"
        "        return self._n\n"
    )
    return tmp_path


def test_races_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("def fine():\n    return 1\n")
    assert main(["races", str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_races_findings_exit_one_and_render(tmp_path, capsys):
    assert main(["races", str(_racy_tree(tmp_path))]) == 1
    out = capsys.readouterr().out
    assert "CONC001" in out and "1 finding(s)" in out


def test_races_missing_path_is_usage_error(capsys):
    assert main(["races", "/no/such/dir"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_races_baseline_roundtrip(tmp_path, capsys):
    tree = _racy_tree(tmp_path)
    baseline = tmp_path / "races_baseline.json"
    assert main(["races", str(tree), "--write-baseline", str(baseline)]) == 0
    assert main(["races", str(tree), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_races_writes_guard_map(tmp_path, capsys):
    import json

    tree = _racy_tree(tmp_path)
    guard_map = tmp_path / "guards.json"
    main(["races", str(tree), "--guard-map", str(guard_map)])
    entries = json.loads(guard_map.read_text())["entries"]
    assert any(
        e["attr"] == "_n" and e["guard"] == "self._lock" for e in entries
    )
    assert "wrote guard map" in capsys.readouterr().out


def test_races_src_self_hosts_without_baseline(capsys):
    assert main(["races", str(REPO_SRC / "repro")]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_verify_single_workload(capsys):
    assert main(["verify", "--workload", "social"]) == 0
    out = capsys.readouterr().out
    assert "social" in out and "sweep OK" in out


def test_verify_all_workloads(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    for name in ("tfacc", "mot", "tpch", "social"):
        assert name in out
    assert "sweep OK" in out


def test_rules_lists_every_rule_id(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REPRO002", "REPRO003", "REPRO004", "REPRO005", "REPRO006"):
        assert rule_id in out
    for rule_id in ("CONC001", "CONC002", "CONC003", "CONC004", "CONC005"):
        assert rule_id in out
    for rule_id in ("PLAN001", "PLAN002", "PLAN003", "PLAN004", "PLAN005", "PLAN006"):
        assert rule_id in out
    # REPRO001 is retired: CONC001 subsumes the lexical heuristic.
    assert "REPRO001" not in out


def test_unknown_command_is_argparse_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code == 2
