"""Engine integration: Σ Mᵢ certificates through prepare/check/report surfaces.

The paper's a-priori guarantee is only useful if the serving layer exposes it:
``prepare_query`` attaches the proven certificate to the compilation,
``cache_info`` reports the verifier counters, ``check`` reports the proven
bound, and every measured run stays at or under what was proven.
"""

from __future__ import annotations

import pytest

from repro.analysis import PlanCertificate
from repro.errors import PlanVerificationError
from repro.execution import BoundedEngine, VerifierInfo
from repro.spc import ParameterizedQuery
from repro.workloads import generate_social_database


@pytest.fixture()
def template(q1):
    return ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )


def test_prepare_query_attaches_certificate_by_default(template, access_schema):
    engine = BoundedEngine(access_schema)
    prepared = engine.prepare_query(template)
    certificate = prepared.certificate
    assert isinstance(certificate, PlanCertificate)
    assert certificate.total_bound == prepared.total_bound == 7000
    assert certificate.describe() in prepared.describe()


def test_prepare_query_verify_off_leaves_no_certificate(template, access_schema):
    engine = BoundedEngine(access_schema, verify_plans=False)
    prepared = engine.prepare_query(template)
    assert prepared.certificate is None

    # Opting in per call certifies the same cached compilation in place.
    assert engine.prepare_query(template, verify=True) is prepared
    assert prepared.certificate is not None


def test_cache_info_reports_verifier_counters(template, access_schema):
    engine = BoundedEngine(access_schema)
    before = engine.cache_info()["verifier"]
    assert isinstance(before, VerifierInfo)
    assert before.certificates == 0 and before.failures == 0

    engine.prepare_query(template)
    engine.prepare_query(template)  # cached: no second verification
    after = engine.cache_info()["verifier"]
    assert after.certificates == 1
    assert after.last_proven_bound == 7000
    assert "plan-verifier" in after.describe()
    assert "7000" in after.describe()


def test_check_report_carries_the_proven_bound(q0, access_schema):
    engine = BoundedEngine(access_schema)
    report = engine.check(q0)
    assert report.certificate is not None
    assert report.certificate.total_bound == report.plan.total_bound
    assert report.verification_error is None
    text = report.describe()
    assert "proven access bound" in text
    assert str(report.certificate.total_bound) in text


def test_measured_access_never_exceeds_proven_bound(template, access_schema):
    """Satellite (a): measured ``tuples_accessed`` ≤ the proven Σ Mᵢ."""
    engine = BoundedEngine(access_schema)
    prepared = engine.prepare_query(template)
    proven = prepared.certificate.total_bound
    database = generate_social_database(scale=0.4, seed=7)
    for binding in (
        {"album": "a0", "user": "u0"},
        {"album": "a1", "user": "u3"},
        {"album": "a2", "user": "u5"},
    ):
        result = prepared.execute(database, **binding)
        assert result.stats.tuples_accessed <= proven


def test_tampered_compilation_is_rejected_at_prepare(template, access_schema):
    """A violated invariant surfaces as a typed, rule-tagged error and is counted."""
    engine = BoundedEngine(access_schema)
    prepared = engine.prepare_query(template, verify=False)
    # Widen one step's stated bound on the cached (mutable) plan: the Σ Mᵢ
    # re-derivation must now disagree with the plan's claim.
    prepared.prepared.plan.steps[-1].bound += 5
    with pytest.raises(PlanVerificationError) as excinfo:
        engine.prepare_query(template, verify=True)
    assert excinfo.value.rule == "PLAN002"
    assert engine.cache_info()["verifier"].failures == 1
    assert prepared.certificate is None
