"""The verifier accepts every artefact the planner emits — and proves its bound.

Soundness is exercised by the mutation harness (``test_mutants.py``); these
tests pin the complementary completeness property: for every effectively
bounded query — the named workload sets and Hypothesis-generated random
TFACC / MOT queries — the planner's plan and its lowered program pass all six
rules, and the issued Σ Mᵢ certificate re-derives exactly the plan's stated
bound.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import derive_certificate, verify_compiled, verify_plan, verify_prepared
from repro.analysis.sweep import verify_workloads
from repro.analysis.verify import COMPILED_RULES, PLAN_RULES, RULES
from repro.core import ebcheck
from repro.execution.compiled import compiled_for
from repro.planning import qplan
from repro.planning.qplan import prepare_plan
from repro.spc import ParameterizedQuery
from repro.workloads import generate_query, get_workload, workload_names
from repro.workloads.mot import mot_access_schema, mot_querygen_spec
from repro.workloads.tfacc import tfacc_access_schema, tfacc_querygen_spec


@pytest.mark.parametrize("workload_name", sorted(workload_names()))
def test_every_bounded_workload_query_verifies(workload_name):
    workload = get_workload(workload_name)
    verified = 0
    for query in workload.queries(seed=0):
        if not ebcheck(query, workload.access_schema).effectively_bounded:
            continue
        plan = qplan(query, workload.access_schema)
        certificate = verify_plan(plan)
        assert certificate.total_bound == plan.total_bound
        assert certificate.num_steps == len(plan.steps)
        assert set(certificate.rules) == set(PLAN_RULES)
        assert verify_compiled(compiled_for(plan)) == COMPILED_RULES
        verified += 1
    assert verified > 0, f"{workload_name} generated no bounded queries?"


def test_sweep_certifies_every_bounded_query_in_all_workloads():
    """The acceptance gate: a finite certificate for every EBCheck-accepted query."""
    report = verify_workloads()
    assert report.ok
    workloads_seen = {entry.workload for entry in report.entries}
    assert workloads_seen == set(workload_names())
    assert not any(entry.outcome == "failed" for entry in report.entries)
    for entry in report.certified:
        assert entry.total_bound is not None
        assert 0 < entry.total_bound < 10**18
    # The negative controls are rejected *before* planning, never "failed".
    assert {e.outcome for e in report.entries} <= {"certified", "rejected"}
    assert "sweep OK" in report.describe()


_RANDOM_WORKLOADS = {
    "tfacc": (tfacc_querygen_spec, tfacc_access_schema),
    "mot": (mot_querygen_spec, mot_access_schema),
}


@pytest.mark.parametrize("workload", sorted(_RANDOM_WORKLOADS))
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_products=st.integers(min_value=0, max_value=3),
    num_selections=st.integers(min_value=3, max_value=7),
)
@settings(max_examples=40, deadline=None)
def test_verifier_accepts_every_plan_the_planner_emits(
    workload, seed, num_products, num_selections
):
    spec_factory, access_factory = _RANDOM_WORKLOADS[workload]
    generated = generate_query(
        spec_factory(),
        num_products=num_products,
        num_selections=num_selections,
        seed=seed,
    )
    access = access_factory()
    if not ebcheck(generated.query, access).effectively_bounded:
        return
    plan = qplan(generated.query, access)
    certificate = verify_plan(plan)
    assert certificate.total_bound == plan.total_bound
    verify_compiled(compiled_for(plan))


def test_prepared_template_verifies_with_slots():
    """Templates plan against ParamSource slots; the verifier must accept them."""
    from repro.spc.builder import SPCQueryBuilder
    from repro.workloads import tfacc_schema

    query = (
        SPCQueryBuilder(tfacc_schema(), name="verify_form")
        .add_atom("accident", alias="a")
        .add_atom("vehicle", alias="v")
        .where_eq("a.accident_id", "v.accident_id")
        .select("a.accident_id")
        .select("v.vehicle_id")
        .build()
    )
    template = ParameterizedQuery(
        query,
        {"date": query.ref("a", "date"), "force": query.ref("a", "police_force")},
    )
    prepared = prepare_plan(template, tfacc_access_schema())
    certificate = verify_prepared(prepared)
    assert certificate.total_bound == prepared.total_bound
    assert set(certificate.rules) == set(RULES)


def test_certificate_describe_names_every_step():
    workload = get_workload("social")
    query = next(
        q
        for q in workload.queries(seed=0)
        if ebcheck(q, workload.access_schema).effectively_bounded
    )
    plan = qplan(query, workload.access_schema)
    certificate = derive_certificate(plan)
    text = certificate.describe()
    assert f"proven bound {plan.total_bound}" in text
    for step in plan.steps:
        assert f"T{step.index}" in text
