"""Mutation harness: every class of seeded defect is rejected, by rule id.

Each test takes a genuine planner/compiler artefact, flips exactly one field —
a widened bound, a dropped dedup, an unbound slot, an undeclared constraint, a
reordered dependency, a tampered program shape, a type-inconsistent equality —
and asserts the verifier rejects the mutant with the *right* rule, while the
untouched artefact still verifies.  This is the soundness half of the
verifier's contract (completeness lives in ``test_verify.py``).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema
from repro.analysis import verify_compiled, verify_plan, verify_prepared
from repro.errors import PlanVerificationError
from repro.execution.compiled import compile_plan, compiled_for
from repro.planning import qplan
from repro.planning.plan import ColumnSource, ConstSource, ParamSource
from repro.planning.qplan import prepare_plan
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import INT, STRING
from repro.spc import ParameterizedQuery
from repro.spc.builder import SPCQueryBuilder
from repro.workloads import tfacc_access_schema, tfacc_schema


def _form_query():
    return (
        SPCQueryBuilder(tfacc_schema(), name="mutant_form")
        .add_atom("accident", alias="a")
        .add_atom("vehicle", alias="v")
        .where_eq("a.accident_id", "v.accident_id")
        .where_const("a.date", "2004-01-03")
        .where_const("a.police_force", "force_01")
        .select("a.accident_id")
        .select("v.vehicle_id")
        .build()
    )


@pytest.fixture()
def plan():
    """A fresh multi-step bounded plan (never shared, safe to mutate)."""
    return qplan(_form_query(), tfacc_access_schema())


@pytest.fixture()
def prepared():
    query = (
        SPCQueryBuilder(tfacc_schema(), name="mutant_template")
        .add_atom("accident", alias="a")
        .add_atom("vehicle", alias="v")
        .where_eq("a.accident_id", "v.accident_id")
        .select("a.accident_id")
        .select("v.vehicle_id")
        .build()
    )
    template = ParameterizedQuery(
        query,
        {"date": query.ref("a", "date"), "force": query.ref("a", "police_force")},
    )
    return prepare_plan(template, tfacc_access_schema())


def _rejects(rule, action):
    with pytest.raises(PlanVerificationError) as excinfo:
        action()
    assert excinfo.value.rule == rule, excinfo.value
    return excinfo.value


def _dependent_step(plan):
    """The first step drawing a key from an earlier step's column."""
    return next(
        step
        for step in plan.steps
        if any(isinstance(s, ColumnSource) for s in step.key_sources.values())
    )


# -- plan-level mutants ------------------------------------------------------------


def test_pristine_plan_verifies(plan):
    assert verify_plan(plan).total_bound == plan.total_bound


def test_widened_step_bound_rejected_plan002(plan):
    plan.steps[-1].bound += 5
    _rejects("PLAN002", lambda: verify_plan(plan))


def test_understated_total_bound_rejected_plan002(plan):
    # Widening *every* stated quantity consistently still cannot fool the
    # verifier: the per-step re-derivation starts from the constraint's N.
    for step in plan.steps:
        step.bound *= 2
    _rejects("PLAN002", lambda: verify_plan(plan))


def test_undeclared_constraint_rejected_plan001(plan):
    step = plan.steps[0]
    smuggled = AccessConstraint(
        step.constraint.relation,
        step.constraint.x,
        step.constraint.y,
        step.constraint.bound + 999,
    )
    assert smuggled not in plan.access_schema
    step.constraint = smuggled
    _rejects("PLAN001", lambda: verify_plan(plan))


def test_miscovered_occurrence_rejected_plan001(plan):
    atoms = sorted(plan.covering)
    assert len(atoms) >= 2
    # Point one occurrence's covering entry at the other occurrence's step.
    plan.covering[atoms[0]] = plan.covering[atoms[1]]
    _rejects("PLAN001", lambda: verify_plan(plan))


def test_forward_key_dependency_rejected_plan003(plan):
    step = _dependent_step(plan)
    for attribute, source in step.key_sources.items():
        if isinstance(source, ColumnSource):
            step.key_sources[attribute] = ColumnSource(step.index, source.column)
            break
    _rejects("PLAN003", lambda: verify_plan(plan))


def test_phantom_column_rejected_plan003(plan):
    step = _dependent_step(plan)
    for attribute, source in step.key_sources.items():
        if isinstance(source, ColumnSource):
            missing = replace(source.column, attribute="no_such_column")
            step.key_sources[attribute] = ColumnSource(source.step, missing)
            break
    _rejects("PLAN003", lambda: verify_plan(plan))


def test_param_source_in_unprepared_plan_rejected_plan003(plan):
    step = plan.steps[0]
    attribute = next(iter(step.key_sources))
    step.key_sources[attribute] = ParamSource("ghost")
    _rejects("PLAN003", lambda: verify_plan(plan))


def test_unbound_slot_in_template_rejected_plan003(prepared):
    slot_step = next(
        step
        for step in prepared.plan.steps
        if any(isinstance(s, ParamSource) for s in step.key_sources.values())
    )
    for attribute, source in slot_step.key_sources.items():
        if isinstance(source, ParamSource):
            slot_step.key_sources[attribute] = ParamSource("undeclared_slot")
            break
    _rejects("PLAN003", lambda: verify_prepared(prepared))


def test_type_inconsistent_join_rejected_plan005():
    schema = DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", STRING)]),
            RelationSchema("s", [("c", STRING), ("d", INT)]),
        ]
    )
    access = AccessSchema(
        [
            AccessConstraint("r", ("a",), ("a", "b"), 5),
            AccessConstraint("s", ("c",), ("c", "d"), 3),
        ]
    )
    good = (
        SPCQueryBuilder(schema, name="typed_ok")
        .add_atom("r")
        .add_atom("s")
        .where_const("r.a", 7)
        .where_eq("r.b", "s.c")  # STRING = STRING
        .select("s.d")
        .build()
    )
    verify_plan(qplan(good, access))

    bad = (
        SPCQueryBuilder(schema, name="typed_bad")
        .add_atom("r")
        .add_atom("s")
        .where_const("r.a", 7)
        .where_eq("r.a", "s.c")  # INT = STRING: can never hold
        .select("s.d")
        .build()
    )
    _rejects("PLAN005", lambda: verify_plan(qplan(bad, access, check=False)))


def test_mistyped_constant_key_rejected_plan005():
    schema = DatabaseSchema([RelationSchema("r", [("a", INT), ("b", STRING)])])
    access = AccessSchema([AccessConstraint("r", ("a",), ("a", "b"), 5)])
    query = (
        SPCQueryBuilder(schema, name="typed_const")
        .add_atom("r")
        .where_const("r.a", 7)
        .select("r.b")
        .build()
    )
    plan = qplan(query, access)
    verify_plan(plan)
    step = plan.steps[0]
    step.key_sources["a"] = ConstSource("seven")  # STRING constant for an INT key
    _rejects("PLAN005", lambda: verify_plan(plan))


# -- compiled-program mutants ------------------------------------------------------


def test_pristine_compiled_verifies(plan):
    assert verify_compiled(compiled_for(plan))


def test_dropped_dedup_rejected_plan004(plan):
    compiled = compile_plan(plan)
    index = next(i for i, s in enumerate(compiled.steps) if s.groups)
    steps = list(compiled.steps)
    steps[index] = replace(steps[index], dedup=False)
    mutant = replace(compiled, steps=tuple(steps))
    error = _rejects("PLAN004", lambda: verify_compiled(mutant))
    assert error.step == index


def test_undeclared_compiled_slot_rejected_plan003(prepared):
    compiled = compile_plan(prepared.plan)
    index, program = next(
        (i, s)
        for i, s in enumerate(compiled.steps)
        if any(is_param for is_param, _ in s.prefix)
    )
    prefix = tuple(
        (is_param, "smuggled_slot" if is_param else value)
        for is_param, value in program.prefix
    )
    steps = list(compiled.steps)
    steps[index] = replace(
        program,
        prefix=prefix,
        param_slots=tuple("smuggled_slot" for _ in program.param_slots)
        if program.param_slots
        else None,
    )
    mutant = replace(compiled, steps=tuple(steps))
    _rejects("PLAN003", lambda: verify_compiled(mutant, slots=prepared.slots))


def test_dropped_atom_program_rejected_plan006(plan):
    compiled = compile_plan(plan)
    mutant = replace(compiled, atoms=compiled.atoms[:-1], joins=())
    _rejects("PLAN006", lambda: verify_compiled(mutant))


def test_tampered_filter_rejected_plan006():
    plan = qplan(_form_query(), tfacc_access_schema())
    compiled = compile_plan(plan)
    index, program = next(
        (i, a) for i, a in enumerate(compiled.atoms) if a.const_filters
    )
    atoms = list(compiled.atoms)
    atoms[index] = replace(program, const_filters=())
    mutant = replace(compiled, atoms=tuple(atoms))
    _rejects("PLAN006", lambda: verify_compiled(mutant))


def test_swapped_projection_rejected_plan006(plan):
    from repro.relational.algebra import row_extractor

    compiled = compile_plan(plan)
    program = compiled.atoms[0]
    arity = len(compiled.steps[program.covering].header)
    assert arity >= 2
    # Probe the genuine extraction positions, then derange them.
    original = list(program.project(tuple(range(arity))))
    if len(original) > 1:
        twisted = row_extractor(original[1:] + original[:1])
    else:
        twisted = row_extractor([(original[0] + 1) % arity])
    atoms = (replace(program, project=twisted),) + compiled.atoms[1:]
    mutant = replace(compiled, atoms=atoms)
    _rejects("PLAN006", lambda: verify_compiled(mutant))
