"""Contract-linter rules on fixture files: known violations, known passes.

Each rule gets fixture sources with seeded violations (written under paths
that put them in the rule's scope) plus clean counterparts; further tests pin
the inline-suppression comment and the baseline round-trip, and a self-hosting
gate runs the full rule set over ``src/`` — the linter must be clean on its
own repository.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    DEFAULT_RULES,
    apply_baseline,
    lint_paths,
    load_baseline,
    parse_module,
    write_baseline,
)
from repro.analysis.lint.rules import (
    ChargingContractRule,
    DeterminismSeamRule,
    StableHashRule,
    SwallowedExceptionRule,
    TypedErrorRule,
)
from repro.errors import ApiMisuseError

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _lint_fixture(tmp_path, relative, source, rules=DEFAULT_RULES):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], rules)


# -- REPRO001: retired in favor of the concurrency analyzer's CONC001 --------------


def test_repro001_is_retired():
    # The lexical lock-discipline heuristic is gone; the flow-sensitive
    # `races` analyzer (CONC001, tests/analysis/test_concurrency.py) subsumes
    # it with inferred guards instead of a fixed module allowlist.
    assert "REPRO001" not in {rule.id for rule in DEFAULT_RULES}


# -- REPRO002: charging contract ---------------------------------------------------


def test_repro002_flags_counter_mutation_and_raw_probes(tmp_path):
    findings = _lint_fixture(
        tmp_path,
        "execution/hot.py",
        """
        def cheat(counter, index, key):
            counter.tuples_accessed += 10     # VIOLATION: counter mutation
            counter.scanned = 0               # VIOLATION: counter mutation
            return index.probe(key)           # VIOLATION: uncharged probe
        """,
        [ChargingContractRule()],
    )
    assert [f.rule for f in findings] == ["REPRO002"] * 3


def test_repro002_allows_data_layers_and_counter_home(tmp_path):
    # Raw probes are legitimate inside the data layers themselves...
    assert _lint_fixture(
        tmp_path,
        "storage/backend.py",
        """
        def fine(index, key):
            return index.probe(key)
        """,
        [ChargingContractRule()],
    ) == []
    # ...and counter mutation is legitimate only in the counter's home module.
    counter_home = _lint_fixture(
        tmp_path,
        "relational/statistics.py",
        """
        class AccessCounter:
            def record(self, slot):
                slot.scanned += 1
        """,
        [ChargingContractRule()],
    )
    assert counter_home == []


# -- REPRO003: determinism seams ---------------------------------------------------


def test_repro003_flags_wall_clock_and_randomness(tmp_path):
    findings = _lint_fixture(
        tmp_path,
        "service/worker.py",
        """
        import random
        import time

        def stamp():
            return time.time()

        def ok_interval():
            return time.monotonic()
        """,
        [DeterminismSeamRule()],
    )
    assert [f.rule for f in findings] == ["REPRO003"] * 2


def test_repro003_ignores_cold_path_modules(tmp_path):
    findings = _lint_fixture(
        tmp_path,
        "workloads/gen.py",
        "import random\n",
        [DeterminismSeamRule()],
    )
    assert findings == []


# -- REPRO004: typed errors --------------------------------------------------------


def test_repro004_flags_untyped_raises_only(tmp_path):
    findings = _lint_fixture(
        tmp_path,
        "core/mod.py",
        """
        from repro.errors import QueryError

        class _Internal(Exception):
            pass

        def bad():
            raise ValueError("untyped")       # VIOLATION

        def typed():
            raise QueryError("typed: ok")

        def private():
            raise _Internal()                 # module-private control flow: ok

        def abstract():
            raise NotImplementedError         # bare name, not a call: ok

        def reraise(error):
            raise error                       # re-raise of a caught object: ok
        """,
        [TypedErrorRule()],
    )
    assert [f.rule for f in findings] == ["REPRO004"]
    assert "ValueError" in findings[0].message


# -- REPRO005: no swallowed broad excepts in the fault layers ----------------------

_SWALLOW_FIXTURE = """
    def swallowing():
        try:
            risky()
        except Exception:
            return None               # VIOLATION: fault silently absorbed

    def bare_swallow():
        try:
            risky()
        except:                       # VIOLATION: bare except, nothing passed on
            pass

    def reraising():
        try:
            risky()
        except BaseException:
            cleanup()
            raise                     # re-raises: ok

    def forwarding(sink):
        try:
            risky()
        except BaseException as error:
            sink(error)               # bound error passed on: ok

    def narrow():
        try:
            risky()
        except ValueError:
            return None               # narrow catch: out of scope
    """


def test_repro005_flags_swallowed_broad_excepts(tmp_path):
    findings = _lint_fixture(
        tmp_path,
        "service/handlers.py",
        _SWALLOW_FIXTURE,
        [SwallowedExceptionRule()],
    )
    assert [f.rule for f in findings] == ["REPRO005", "REPRO005"]
    assert "bare `except`" in findings[1].message


def test_repro005_scope_is_service_and_storage_only(tmp_path):
    findings = _lint_fixture(
        tmp_path,
        "analysis/handlers.py",
        _SWALLOW_FIXTURE,
        [SwallowedExceptionRule()],
    )
    assert findings == []
    findings = _lint_fixture(
        tmp_path,
        "storage/handlers.py",
        _SWALLOW_FIXTURE,
        [SwallowedExceptionRule()],
    )
    assert len(findings) == 2


# -- REPRO006: process-stable hashing in routing layers ----------------------------

_HASH_FIXTURE = """
    from repro.util import stable_shard

    def route(key, shards):
        return hash(key) % shards         # VIOLATION: salted per process

    def route_stable(key, shards):
        return stable_shard(key, shards)  # the sanctioned primitive

    class Map:
        def bucket(self, key):
            return hash(key) % self.n     # VIOLATION: method context too

        def hashes_are_fine_as_names(self):
            hash_value = self.hash(1)     # attribute named hash: not builtin
            return hash_value
    """


def test_repro006_flags_builtin_hash_in_sharding(tmp_path):
    findings = _lint_fixture(
        tmp_path, "sharding/partition.py", _HASH_FIXTURE, [StableHashRule()]
    )
    assert [f.rule for f in findings] == ["REPRO006", "REPRO006"]
    assert all("stable_hash" in f.message for f in findings)


def test_repro006_scope_is_routing_layers_only(tmp_path):
    # hash() is fine outside cross-process routing decisions (e.g. an
    # in-process dict key in the execution layer).
    findings = _lint_fixture(
        tmp_path, "execution/cache.py", _HASH_FIXTURE, [StableHashRule()]
    )
    assert findings == []


# -- sharding joins the concurrency/fault/determinism scopes -----------------------


def test_sharding_is_in_scope_for_determinism(tmp_path):
    findings = _lint_fixture(
        tmp_path,
        "sharding/router.py",
        "import time\n\ndef stamp():\n    return time.time()\n",
        [DeterminismSeamRule()],
    )
    assert [f.rule for f in findings] == ["REPRO003"]


def test_sharding_is_in_scope_for_swallowed_excepts(tmp_path):
    findings = _lint_fixture(
        tmp_path,
        "sharding/worker.py",
        _SWALLOW_FIXTURE,
        [SwallowedExceptionRule()],
    )
    assert len(findings) == 2


# -- suppression + baseline --------------------------------------------------------


def test_inline_suppression_silences_one_line(tmp_path):
    findings = _lint_fixture(
        tmp_path,
        "core/mod.py",
        """
        def first():
            raise ValueError("seen")

        def second():
            raise ValueError("acknowledged")  # repro-lint: disable=REPRO004 legacy api

        def third():
            # repro-lint: disable=REPRO004 standalone comment covers next line
            raise ValueError("also acknowledged")
        """,
        [TypedErrorRule()],
    )
    assert len(findings) == 1
    assert findings[0].line == 3  # only the unsuppressed `first()` raise


def test_baseline_round_trip(tmp_path):
    fixture = tmp_path / "core" / "mod.py"
    fixture.parent.mkdir(parents=True)
    fixture.write_text("def bad():\n    raise ValueError('x')\n")
    findings = lint_paths([fixture], [TypedErrorRule()])
    assert len(findings) == 1

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings, justification="pinned by test")
    entries = load_baseline(baseline_path)
    assert len(entries) == 1 and entries[0].justification == "pinned by test"

    # Round-trip: the recorded finding is known, nothing is new or stale.
    result = apply_baseline(findings, entries)
    assert result.new == () and len(result.known) == 1 and result.stale == ()

    # Line moves must not resurrect the finding (fingerprints are line-free).
    fixture.write_text("# a new leading comment\ndef bad():\n    raise ValueError('x')\n")
    moved = lint_paths([fixture], [TypedErrorRule()])
    assert moved[0].line != findings[0].line
    result = apply_baseline(moved, entries)
    assert result.new == ()

    # A fixed finding turns the entry stale.
    fixture.write_text("def good():\n    return 1\n")
    result = apply_baseline(lint_paths([fixture], [TypedErrorRule()]), entries)
    assert result.new == () and len(result.stale) == 1


def test_baseline_requires_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        '{"findings": [{"rule": "REPRO004", "path": "x.py", "message": "m", '
        '"justification": "  "}]}'
    )
    with pytest.raises(ApiMisuseError):
        load_baseline(path)


def test_suppression_table_parses_multiple_rules(tmp_path):
    module = parse_module(
        _write(tmp_path, "m.py", "x = 1  # repro-lint: disable=REPRO001,REPRO002 why\n")
    )
    assert module.suppressed("REPRO001", 1) and module.suppressed("REPRO002", 1)
    assert not module.suppressed("REPRO004", 1)


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


# -- self-hosting ------------------------------------------------------------------


def test_linter_is_clean_on_its_own_repository():
    """The acceptance gate: ``python -m repro.analysis lint src/`` exits 0."""
    findings = lint_paths([REPO_ROOT / "src"], DEFAULT_RULES, root=REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)
