"""Unit tests for BCheck (Theorem 3/5) and EBCheck (Theorem 4/6)."""

import pytest

from repro.access import AccessConstraint, AccessSchema
from repro.core import bcheck, ebcheck, is_bounded, is_effectively_bounded
from repro.errors import UnsatisfiableQueryError
from repro.relational import schema_from_mapping
from repro.spc import SPCQueryBuilder


class TestBCheck:
    def test_q0_is_bounded(self, q0, access_schema):
        result = bcheck(q0, access_schema)
        assert result.bounded and bool(result)
        assert not result.missing
        assert "BOUNDED" in result.explain()

    def test_boolean_queries_bounded_without_access_schema(self, q2_boolean):
        """Example 1(3): every Boolean SPC query is bounded under A = ∅."""
        assert is_bounded(q2_boolean, AccessSchema())

    def test_q0_not_bounded_without_access_schema(self, q0):
        result = bcheck(q0, AccessSchema())
        assert not result.bounded
        assert q0.ref("ia", "photo_id") in result.missing
        assert "NOT bounded" in result.explain()

    def test_q1_is_bounded_but_only_through_joins(self, q1, access_schema):
        # Q1 has no constants; its only required parameters are X_B ∪ Z, and
        # Z = {photo_id} is not derivable from X_B alone, so Q1 is unbounded.
        result = bcheck(q1, access_schema)
        assert not result.bounded

    def test_required_set_is_xb_union_z(self, q0, access_schema):
        result = bcheck(q0, access_schema)
        assert result.required == q0.condition_only_refs | frozenset(q0.output)

    def test_proof_available_for_covered_parameters(self, q0, access_schema):
        result = bcheck(q0, access_schema)
        proof = result.proof_of(q0.output[0])
        assert len(proof) >= 1

    def test_unsatisfiable_query_rejected(self, schema, access_schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .where_const("f.user_id", "u0")
            .where_const("f.user_id", "u1")
            .select("f.friend_id")
            .build()
        )
        with pytest.raises(UnsatisfiableQueryError):
            bcheck(query, access_schema)

    def test_bounded_single_relation_lookup(self, schema, access_schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .where_const("f.user_id", "u0")
            .select("f.friend_id")
            .build()
        )
        assert is_bounded(query, access_schema)


class TestEBCheck:
    def test_q0_is_effectively_bounded(self, q0, access_schema):
        result = ebcheck(q0, access_schema)
        assert result.effectively_bounded and bool(result)
        assert not result.uncovered and not result.unindexed_atoms
        assert "EFFECTIVELY BOUNDED" in result.explain()

    def test_q1_is_not_effectively_bounded(self, q1, access_schema):
        result = ebcheck(q1, access_schema)
        assert not result.effectively_bounded
        assert result.uncovered  # nothing is derivable without constants
        assert "NOT effectively bounded" in result.explain()

    def test_example8_no_tagging_index(self, q0, access_schema):
        """Example 8: dropping (photo_id, taggee_id) -> (tagger_id, 1) breaks Q0."""
        tagging_constraint = access_schema.for_relation("tagging")[0]
        weakened = access_schema.without(tagging_constraint)
        result = ebcheck(q0, weakened)
        assert not result.effectively_bounded
        assert 2 in result.unindexed_atoms  # the tagging occurrence

    def test_boolean_query_not_effectively_bounded_without_indices(self, q2_boolean):
        """Proposition 2's separation: bounded but not effectively bounded."""
        empty = AccessSchema()
        assert is_bounded(q2_boolean, empty)
        assert not is_effectively_bounded(q2_boolean, empty)

    def test_effectively_bounded_implies_bounded(self, access_schema, q0, q1, q2_boolean):
        for query in (q0, q1, q2_boolean):
            if is_effectively_bounded(query, access_schema):
                assert is_bounded(query, access_schema)

    def test_parameterless_occurrence_needs_domain_constraint(self, schema, access_schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .add_atom("in_album", alias="ia")
            .where_const("f.user_id", "u0")
            .select("f.friend_id")
            .build()
        )
        assert not is_effectively_bounded(query, access_schema)
        with_domain = access_schema.merged(
            AccessSchema([AccessConstraint("in_album", [], ["album_id"], 100)])
        )
        assert is_effectively_bounded(query, with_domain)

    def test_constant_only_membership_query(self, schema, access_schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("in_album", alias="ia")
            .where_const("ia.album_id", "a0")
            .boolean()
            .build()
        )
        assert is_effectively_bounded(query, access_schema)

    def test_output_not_covered_by_any_index(self, schema, access_schema):
        # photo_id -> album_id is not covered by any constraint: the query
        # selects the album of a given photo, but the only in_album index is
        # keyed on album_id.
        query = (
            SPCQueryBuilder(schema)
            .add_atom("in_album", alias="ia")
            .where_const("ia.photo_id", "p1")
            .select("ia.album_id")
            .build()
        )
        assert not is_effectively_bounded(query, access_schema)

    def test_unsatisfiable_query_rejected(self, schema, access_schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("in_album", alias="ia")
            .where_const("ia.album_id", "a0")
            .where_const("ia.album_id", "a1")
            .select("ia.photo_id")
            .build()
        )
        with pytest.raises(UnsatisfiableQueryError):
            ebcheck(query, access_schema)


class TestSeparationOfClasses:
    def test_spc_eb_strictly_contained_in_spc_b(self, schema):
        """Proposition 2: SPC_eb ⊊ SPC_b under the same access schema."""
        access = AccessSchema(
            [AccessConstraint("in_album", ["album_id"], ["photo_id"], 10)]
        )
        # Boolean query over friends: bounded (a witness suffices) but not
        # effectively bounded (no index on friends at all).
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .where_const("f.user_id", "u0")
            .boolean()
            .build()
        )
        assert is_bounded(query, access)
        assert not is_effectively_bounded(query, access)
