"""Unit tests for actualization, the access-closure engine and the rule systems."""

import pytest

from repro.access import AccessConstraint, AccessSchema
from repro.core import (
    actualize,
    compute_closure,
    ib_derives,
    ie_derives,
    indexed_per_atom,
    is_indexed,
)
from repro.relational import schema_from_mapping
from repro.spc import AttrRef, SPCQueryBuilder


class TestActualize:
    def test_constraints_applied_per_occurrence(self, q0, access_schema):
        gamma = actualize(q0, access_schema)
        # One constraint per relation, each relation occurs once in Q0.
        assert len(gamma) == 3
        by_atom = {item.atom for item in gamma}
        assert by_atom == {0, 1, 2}

    def test_renamed_occurrences_each_get_constraints(self, schema, access_schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f1")
            .add_atom("friends", alias="f2")
            .where_const("f1.user_id", "u0")
            .where_eq("f1.friend_id", "f2.user_id")
            .select("f2.friend_id")
            .build()
        )
        gamma = actualize(query, access_schema)
        friends_items = [item for item in gamma if item.constraint.relation == "friends"]
        assert {item.atom for item in friends_items} == {0, 1}

    def test_incompatible_shape_skipped(self, q0):
        weird = AccessSchema([AccessConstraint("friends", ["not_an_attr"], ["friend_id"], 1)])
        assert actualize(q0, weird) == []


class TestClosureEngine:
    def test_seeds_and_equivalents_enter_closure(self, q0, access_schema):
        closure = compute_closure(q0, access_schema, [q0.ref("ia", "album_id")])
        assert q0.ref("ia", "album_id") in closure.attributes
        # album_id -> photo_id fires, and photo_id = t.photo_id via Σ_Q.
        assert q0.ref("ia", "photo_id") in closure.attributes
        assert q0.ref("t", "photo_id") in closure.attributes

    def test_bounds_multiply_along_chains(self, q0, access_schema):
        closure = compute_closure(q0, access_schema, q0.constant_refs)
        assert closure.bound_of(q0.ref("ia", "album_id")) == 1
        assert closure.bound_of(q0.ref("ia", "photo_id")) == 1000
        # tagger_id is reached through (photo_id, taggee_id) -> (tagger_id, 1):
        # 1000 candidate photos times bound 1.
        assert closure.bound_of(q0.ref("t", "tagger_id")) == 1000

    def test_unreachable_attribute_not_in_closure(self, q1, access_schema):
        closure = compute_closure(q1, access_schema, q1.constant_refs)
        assert q1.ref("ia", "photo_id") not in closure.attributes
        assert closure.missing([q1.ref("ia", "photo_id")])

    def test_empty_key_constraints_fire_immediately(self, schema):
        access = AccessSchema([AccessConstraint("friends", [], ["user_id"], 50)])
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .select("f.user_id")
            .build()
        )
        closure = compute_closure(query, access, [])
        assert query.ref("f", "user_id") in closure.attributes
        assert closure.bound_of(query.ref("f", "user_id")) == 50

    def test_provenance_and_proof_reconstruction(self, q0, access_schema):
        closure = compute_closure(q0, access_schema, q0.constant_refs)
        proof = closure.proof_of(q0.ref("t", "tagger_id"))
        rules_used = {step.rule for step in proof}
        assert "Actualization" in rules_used and "Transitivity" in rules_used
        # tagger_id can be reached through the tagging constraint or, via the
        # Σ_Q equality tagger_id = friend_id, through the friends constraint.
        assert "S2.tagger_id" in proof.describe()
        assert any(
            step.constraint is not None
            and step.constraint.constraint.relation in {"tagging", "friends"}
            for step in proof
        )

    def test_proof_of_seed_is_reflexivity(self, q0, access_schema):
        closure = compute_closure(q0, access_schema, q0.constant_refs)
        proof = closure.proof_of(q0.ref("f", "user_id"))
        assert proof.steps[0].rule == "Reflexivity"


class TestIndexedness:
    def test_is_indexed_positive(self, q0, access_schema):
        refs = [q0.ref("ia", "album_id"), q0.ref("ia", "photo_id")]
        assert is_indexed(q0, access_schema, refs)

    def test_is_indexed_negative_when_key_outside_set(self, q0, access_schema):
        # {photo_id} alone: the only in_album constraint is keyed on album_id,
        # which is not inside the set, so the set is not indexed.
        assert not is_indexed(q0, access_schema, [q0.ref("ia", "photo_id")])

    def test_is_indexed_requires_single_atom(self, q0, access_schema):
        with pytest.raises(ValueError):
            is_indexed(q0, access_schema, [q0.ref("ia", "photo_id"), q0.ref("f", "user_id")])

    def test_indexed_per_atom_parameterless_occurrence(self, schema, access_schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .add_atom("in_album", alias="ia")
            .where_const("f.user_id", "u0")
            .select("f.friend_id")
            .build()
        )
        verdicts = indexed_per_atom(query, access_schema, query.parameters)
        assert verdicts[0] is True
        # in_album contributes no parameters and has no empty-key constraint.
        assert verdicts[1] is False
        with_domain = access_schema.merged(
            AccessSchema([AccessConstraint("in_album", [], ["album_id"], 100)])
        )
        assert indexed_per_atom(query, with_domain, query.parameters)[1] is True


class TestRuleInterfaces:
    def test_example3_ib_derivation(self, q0, access_schema):
        """Example 3: X0 = (aid, uid, tid2, fid, tid1) derives every parameter."""
        x0 = {
            q0.ref("ia", "album_id"),
            q0.ref("f", "user_id"),
            q0.ref("t", "taggee_id"),
            q0.ref("f", "friend_id"),
            q0.ref("t", "tagger_id"),
        }
        for target in q0.parameters:
            derivation = ib_derives(q0, access_schema, x0, [target])
            assert derivation.derivable, f"{target} should be derivable from X0"
        # aid alone derives pid2 with bound 1000 (step (3) of Example 3).
        derivation = ib_derives(
            q0, access_schema, [q0.ref("ia", "album_id")], [q0.ref("t", "photo_id")]
        )
        assert derivation.derivable and derivation.bound == 1000

    def test_ib_not_derivable_without_seeds(self, q1, access_schema):
        derivation = ib_derives(q1, access_schema, [], [q1.ref("ia", "photo_id")])
        assert not derivation.derivable and derivation.bound is None

    def test_example5_ie_derivation(self, q0, access_schema):
        """Example 5: (aid, uid) ↦_IE the parameters of each occurrence."""
        seeds = [q0.ref("ia", "album_id"), q0.ref("f", "user_id"), q0.ref("t", "taggee_id")]
        tagging_params = q0.atom_parameters(2)
        derivation = ie_derives(q0, access_schema, seeds, tagging_params)
        assert derivation.derivable
        assert derivation.proofs

    def test_ie_rejects_unindexed_targets(self, schema, access_schema):
        # friends(friend_id) joined from in_album side is derivable but the
        # occurrence's parameters are only indexed through user_id; remove the
        # friends constraint and I_E must reject what I_B would still accept.
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .where_const("f.user_id", "u0")
            .select("f.friend_id")
            .build()
        )
        no_friends_index = AccessSchema(
            [c for c in access_schema if c.relation != "friends"]
        )
        ib = ib_derives(query, no_friends_index, query.constant_refs, query.parameters)
        ie = ie_derives(query, no_friends_index, query.constant_refs, query.parameters)
        assert not ie.derivable
        assert not ib.derivable  # nothing derives friend_id without the constraint
        with_index = ie_derives(query, access_schema, query.constant_refs, query.parameters)
        assert with_index.derivable
