"""Every typed error pickles round-trip with its structured fields intact.

The sharded service propagates failures across process boundaries by
pickling them over a pipe (:mod:`repro.sharding.messages`).  An error that
loses its ``relation``/``step``/``charged``/``shard`` fields in transit — or
worse, raises ``TypeError`` inside ``pickle.loads`` because its ``__init__``
signature does not match ``Exception``'s default ``cls(*args)`` reconstruction
— would turn a precise diagnosis into a crash of the transport itself.
``ReproError.__reduce__`` guarantees reconstruction without re-running
``__init__``; this module proves it for the **complete** taxonomy, with a
meta-test that fails when a new error class is added without an example here.
"""

from __future__ import annotations

import pickle

import pytest

import repro.errors as errors_module
from repro.errors import (
    AccessSchemaError,
    ApiMisuseError,
    ArityError,
    BudgetExceededError,
    ConstraintViolationError,
    DeadlineExceededError,
    DomainValueError,
    ExecutionError,
    NotEffectivelyBoundedError,
    ParseError,
    PlanningError,
    PlanVerificationError,
    QueryError,
    ReproError,
    SchemaError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeout,
    ShardCrashedError,
    ShardError,
    ShardRoutingError,
    StorageError,
    StorageUnavailableError,
    TransientStorageError,
    UnknownAttributeError,
    UnknownRelationError,
    UnsatisfiableQueryError,
    WorkloadError,
)


def _stamped_storage_error() -> StorageError:
    """A StorageError whose ``step`` was stamped after construction, the way
    the compiled runtime annotates in-plan failures."""
    error = StorageError("disk gone", relation="accident", operation="fetch", charged=True)
    error.step = 3
    return error


#: One representative instance per concrete error class, exercising every
#: structured field the class carries.
EXAMPLES: dict[type, ReproError] = {
    ReproError: ReproError("base failure"),
    SchemaError: SchemaError("bad schema"),
    UnknownRelationError: UnknownRelationError("accidnet"),
    UnknownAttributeError: UnknownAttributeError("accident", "dat"),
    ArityError: ArityError("3 values for 2 attributes"),
    QueryError: QueryError("bad query"),
    UnsatisfiableQueryError: UnsatisfiableQueryError("x = 1 and x = 2"),
    ParseError: ParseError("unexpected token", position=17),
    AccessSchemaError: AccessSchemaError("bad constraint"),
    ConstraintViolationError: ConstraintViolationError(
        "bound violated", constraint=("accident", ("date",), 40), witness=("2019-03-07",)
    ),
    NotEffectivelyBoundedError: NotEffectivelyBoundedError("EBCheck rejected"),
    PlanningError: PlanningError("no plan"),
    PlanVerificationError: PlanVerificationError(
        "V3", "step bound unproven", step=2
    ),
    DomainValueError: DomainValueError("not a date"),
    ApiMisuseError: ApiMisuseError("negative shard count"),
    ExecutionError: ExecutionError("executor failed"),
    StorageError: _stamped_storage_error(),
    TransientStorageError: TransientStorageError(
        "connection dropped", relation="vehicle", operation="scan", charged=False
    ),
    StorageUnavailableError: StorageUnavailableError(
        "breaker open", relation="vehicle", operation="contains", charged=False
    ),
    BudgetExceededError: BudgetExceededError(120, 100, projected=True, step=1),
    DeadlineExceededError: DeadlineExceededError("past deadline", accessed=55, step=2),
    WorkloadError: WorkloadError("scale must be positive"),
    ServiceError: ServiceError("service broke"),
    ServiceTimeout: ServiceTimeout(
        "request expired", deadline=1.5, plan_key=("q", 1), elapsed=2.0, limit=1.5, step=4
    ),
    ServiceOverloadedError: ServiceOverloadedError("queue full"),
    ServiceClosedError: ServiceClosedError("closed"),
    ShardError: ShardError("shard trouble", shard=2),
    ShardRoutingError: ShardRoutingError("step T1 probes other shards"),
    ShardCrashedError: ShardCrashedError("worker died", shard=1),
}


def _all_error_classes() -> list[type]:
    """Every ReproError subclass defined in :mod:`repro.errors`."""
    classes = [
        obj
        for obj in vars(errors_module).values()
        if isinstance(obj, type) and issubclass(obj, ReproError)
    ]
    return sorted(classes, key=lambda cls: cls.__name__)


def test_example_table_covers_the_full_taxonomy():
    """Adding an error class without a pickling example here must fail CI."""
    missing = [cls.__name__ for cls in _all_error_classes() if cls not in EXAMPLES]
    assert not missing, (
        f"error classes with no pickle-round-trip example: {missing}; "
        f"add one to EXAMPLES in {__file__}"
    )


@pytest.mark.parametrize(
    "error", EXAMPLES.values(), ids=[cls.__name__ for cls in EXAMPLES]
)
def test_pickle_round_trip_preserves_everything(error: ReproError):
    revived = pickle.loads(pickle.dumps(error))
    assert type(revived) is type(error)
    assert revived.args == error.args
    assert str(revived) == str(error)
    # Every structured field survives — including attributes stamped after
    # construction (StorageError.step) that cls(*args) reconstruction loses.
    assert revived.__dict__ == error.__dict__


@pytest.mark.parametrize(
    "error", EXAMPLES.values(), ids=[cls.__name__ for cls in EXAMPLES]
)
def test_round_trip_is_stable(error: ReproError):
    """A second trip changes nothing: no message double-decoration, no
    accumulating state (the historical failure mode was UnknownRelationError
    re-running __init__ on its already-decorated message)."""
    once = pickle.loads(pickle.dumps(error))
    twice = pickle.loads(pickle.dumps(once))
    assert str(twice) == str(error)
    assert twice.args == error.args
    assert twice.__dict__ == error.__dict__


def test_revived_errors_still_raise_and_catch_as_their_type():
    revived = pickle.loads(pickle.dumps(EXAMPLES[BudgetExceededError]))
    with pytest.raises(ExecutionError) as caught:
        raise revived
    assert caught.value.accessed == 120
    assert caught.value.budget == 100
