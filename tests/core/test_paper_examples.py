"""Regression tests replaying every worked example of the paper.

Each test cites the example it reproduces; together they form an executable
summary of Sections 1–5:

* Example 1/2 — Q0, Q1, Q2 and the access schema A0.
* Example 3/4 — the I_B derivation and Theorem 3 verdicts.
* Example 5/7 — the I_E derivation and Theorem 4 verdicts.
* Example 6 — what BCheck computes for Q0.
* Example 8 — an access schema under which no dominating set exists.
* Example 9 — findDPh's dominating parameters for Q1.
* Example 10 — the query plan for Q0 and its 7000-tuple bound.
"""

from repro.access import AccessSchema
from repro.core import (
    bcheck,
    compute_closure,
    ebcheck,
    find_dominating_parameters,
    ib_derives,
    is_bounded,
    is_effectively_bounded,
)
from repro.execution import NaiveExecutor, eval_dq
from repro.planning import qplan
from repro.workloads import generate_social_database, query_q0, query_q1


class TestExample1And2:
    def test_q0_effectively_bounded_under_a0(self, q0, access_schema):
        assert is_bounded(q0, access_schema)
        assert is_effectively_bounded(q0, access_schema)

    def test_q0_not_bounded_without_constraints(self, q0):
        assert not is_bounded(q0, AccessSchema())

    def test_q1_not_bounded_even_under_a0(self, q1, access_schema):
        assert not is_bounded(q1, access_schema)
        assert not is_effectively_bounded(q1, access_schema)

    def test_q2_boolean_bounded_without_access_schema(self, q2_boolean):
        assert is_bounded(q2_boolean, AccessSchema())

    def test_access_schema_a0_contents(self, access_schema):
        bounds = {c.relation: c.bound for c in access_schema}
        assert bounds == {"in_album": 1000, "friends": 5000, "tagging": 1}


class TestExample3And4:
    def test_x0_derives_every_parameter(self, q0, access_schema):
        x0 = q0.condition_only_refs | q0.constant_refs
        for parameter in q0.condition_only_refs | frozenset(q0.output):
            assert ib_derives(q0, access_schema, x0, [parameter]).derivable

    def test_aid_derives_pid2_with_bound_1000(self, q0, access_schema):
        derivation = ib_derives(
            q0, access_schema, [q0.ref("ia", "album_id")], [q0.ref("t", "photo_id")]
        )
        assert derivation.derivable and derivation.bound == 1000

    def test_theorem3_verdict_for_q0(self, q0, access_schema):
        assert bcheck(q0, access_schema).bounded

    def test_boolean_query_bounded_via_reflexivity(self, q2_boolean):
        result = bcheck(q2_boolean, AccessSchema())
        assert result.bounded
        # Every required parameter is a seed, so the closure equals the seeds.
        assert result.required <= result.closure.attributes


class TestExample5And7:
    def test_xc_closure_covers_all_parameters(self, q0, access_schema):
        closure = compute_closure(q0, access_schema, q0.constant_refs)
        for atom_index in range(q0.num_atoms):
            assert q0.atom_parameters(atom_index) <= closure.attributes

    def test_theorem4_verdict_for_q0(self, q0, access_schema):
        result = ebcheck(q0, access_schema)
        assert result.effectively_bounded
        assert not result.unindexed_atoms


class TestExample6:
    def test_bcheck_closure_contains_photo_ids(self, q0, access_schema):
        result = bcheck(q0, access_schema)
        assert q0.ref("ia", "photo_id") in result.closure.attributes
        assert q0.ref("t", "photo_id") in result.closure.attributes


class TestExample8:
    def test_no_dominating_parameters_without_tagging_index(self, q1, access_schema):
        weakened = access_schema.without(access_schema.for_relation("tagging")[0])
        assert not is_effectively_bounded(q1, weakened)
        assert not find_dominating_parameters(q1, weakened).found


class TestExample9:
    def test_finddp_returns_aid_uid_tid2(self, q1, access_schema):
        result = find_dominating_parameters(q1, access_schema, alpha=3 / 7)
        assert result.found
        assert {r.pretty(q1.atoms) for r in result.parameters} == {
            "ia.album_id",
            "f.user_id",
            "t.taggee_id",
        }


class TestExample10:
    def test_plan_bound_is_7000(self, q0, access_schema):
        assert qplan(q0, access_schema).total_bound == 7000

    def test_plan_execution_matches_direct_evaluation(self, q0, access_schema):
        database = generate_social_database(scale=0.8, seed=13)
        plan = qplan(q0, access_schema)
        bounded = eval_dq(plan, database)
        naive = NaiveExecutor().execute(q0, database)
        assert bounded.as_set == naive.as_set
        assert bounded.stats.tuples_accessed <= 7000
        assert bounded.stats.tuples_accessed < naive.stats.tuples_accessed
