"""Unit tests for dominating parameters (Section 4.3, Theorem 7)."""

import pytest

from repro.access import AccessConstraint, AccessSchema
from repro.core import (
    ebcheck,
    find_dominating_parameters,
    find_minimum_dominating_parameters,
    has_dominating_parameters,
    makes_effectively_bounded,
)
from repro.spc import SPCQueryBuilder


class TestFindDPh:
    def test_example9_heuristic_set(self, q1, access_schema):
        """Example 9: findDPh returns {aid, uid, tid2} for Q1 under A0 with α = 3/7."""
        result = find_dominating_parameters(q1, access_schema, alpha=3 / 7)
        assert result.found
        pretty = {ref.pretty(q1.atoms) for ref in result.parameters}
        assert pretty == {"ia.album_id", "f.user_id", "t.taggee_id"}
        assert result.ratio == pytest.approx(3 / 7)

    def test_returned_set_is_dominating(self, q1, access_schema):
        result = find_dominating_parameters(q1, access_schema)
        assert makes_effectively_bounded(q1, access_schema, result.parameters)

    def test_alpha_rejection(self, q1, access_schema):
        strict = find_dominating_parameters(q1, access_schema, alpha=0.1)
        assert not strict.found
        assert strict.ratio is not None and strict.ratio > 0.1
        assert "α" in strict.reason or "alpha" in strict.reason.lower()

    def test_example8_no_dominating_set(self, q1, access_schema):
        """Example 8: without the tagging index no instantiation helps."""
        tagging_constraint = access_schema.for_relation("tagging")[0]
        weakened = access_schema.without(tagging_constraint)
        result = find_dominating_parameters(q1, weakened)
        assert not result.found
        assert not has_dominating_parameters(q1, weakened)

    def test_already_effectively_bounded_query(self, q0, access_schema):
        result = find_dominating_parameters(q0, access_schema)
        assert result.found
        # Nothing needs to be instantiated: Q0 already carries its constants.
        assert result.parameters == frozenset()

    def test_no_ratio_cap_by_default(self, q1, access_schema):
        assert find_dominating_parameters(q1, access_schema).found


class TestExactSolver:
    def test_exact_minimum_is_no_larger_than_heuristic(self, q1, access_schema):
        heuristic = find_dominating_parameters(q1, access_schema)
        exact = find_minimum_dominating_parameters(q1, access_schema)
        assert exact.found
        assert len(exact.parameters) <= len(heuristic.parameters)
        assert makes_effectively_bounded(q1, access_schema, exact.parameters)

    def test_exact_minimum_for_q1_is_two(self, q1, access_schema):
        """Instantiating aid and uid alone already makes Q1 effectively bounded."""
        exact = find_minimum_dominating_parameters(q1, access_schema)
        assert len(exact.parameters) == 2
        pretty = {ref.pretty(q1.atoms) for ref in exact.parameters}
        assert "ia.album_id" in pretty

    def test_exact_respects_alpha(self, q1, access_schema):
        result = find_minimum_dominating_parameters(q1, access_schema, alpha=0.05)
        assert not result.found

    def test_exact_refuses_large_candidate_sets(self, access_schema, schema):
        builder = SPCQueryBuilder(schema)
        for index in range(7):
            builder.add_atom("tagging", alias=f"t{index}")
        query = builder.select("t0.photo_id").build()
        with pytest.raises(ValueError):
            find_minimum_dominating_parameters(query, access_schema, max_parameters=10)

    def test_exact_reports_unachievable(self, q1, access_schema):
        tagging_constraint = access_schema.for_relation("tagging")[0]
        weakened = access_schema.without(tagging_constraint)
        result = find_minimum_dominating_parameters(q1, weakened)
        assert not result.found and "no subset" in result.reason


class TestInteractionWithEBCheck:
    def test_binding_suggested_parameters_yields_eb_query(self, q1, access_schema):
        result = find_dominating_parameters(q1, access_schema)
        # Bind every suggested parameter to the same constant: effective
        # boundedness depends only on which parameters carry a constant, and a
        # shared value keeps Σ_Q-equivalent parameters consistent.
        bound = q1.with_constants({ref: "probe" for ref in result.parameters})
        assert ebcheck(bound, access_schema).effectively_bounded

    def test_dominating_parameters_on_single_relation(self, schema):
        access = AccessSchema([AccessConstraint("friends", ["user_id"], ["friend_id"], 10)])
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .select("f.friend_id")
            .build()
        )
        result = find_dominating_parameters(query, access)
        assert result.found
        assert {ref.attribute for ref in result.parameters} == {"user_id"}
