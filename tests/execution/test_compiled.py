"""Unit tests for the compiled execution path (``repro.execution.compiled``).

The compiled program must be observationally identical to the interpreted
tuple-at-a-time executor — same rows, same ``tuples_accessed`` — while doing
all symbolic resolution at compile time.  These tests pin that equivalence on
the paper's examples and on the edge cases the lowering handles specially
(witness occurrences, Boolean queries, parameter slots, mixed-type keys).
"""

import pytest

from repro.access import AccessConstraint, AccessSchema, build_access_indexes
from repro.errors import ExecutionError
from repro.execution import BoundedExecutor, CompiledPlan, compile_plan, compiled_for
from repro.execution.prepared import prepare_query
from repro.planning import qplan
from repro.relational import Database
from repro.relational.schema import schema_from_mapping
from repro.spc import ParameterizedQuery, SPCQueryBuilder
from repro.workloads import query_q0, social_access_schema


def _both(plan, database, params=None, indexes=None):
    """Execute ``plan`` down both paths and assert they agree; return compiled."""
    executor = BoundedExecutor()
    if indexes is None:
        indexes = executor.prepare(database, plan.access_schema)
    compiled = executor.execute(plan, database, indexes=indexes, params=params)
    interpreted = executor.execute_interpreted(
        plan, database, indexes=indexes, params=params
    )
    assert set(compiled.rows.rows) == set(interpreted.rows.rows)
    assert compiled.rows.header == interpreted.rows.header
    assert compiled.stats.tuples_accessed == interpreted.stats.tuples_accessed
    assert compiled.details["step_sizes"] == interpreted.details["step_sizes"]
    return compiled


class TestCompiledEquivalence:
    def test_q0_compiled_matches_interpreted(self, q0, access_schema, small_social_db):
        plan = qplan(q0, access_schema)
        result = _both(plan, small_social_db)
        assert result.as_set == {("p1",)}

    def test_empty_answer(self, access_schema, small_social_db):
        query = query_q0(album_id="a_nonexistent", user_id="u0")
        plan = qplan(query, access_schema)
        assert _both(plan, small_social_db).is_empty

    def test_boolean_query(self, q2_boolean, access_schema, small_social_db):
        plan = qplan(q2_boolean, access_schema)
        assert _both(plan, small_social_db).boolean_value is True
        negative = query_q0(album_id="a1", user_id="u2").boolean_version()
        plan = qplan(negative, access_schema)
        assert _both(plan, small_social_db).boolean_value is False

    def test_compilation_is_memoized_on_the_plan(self, q0, access_schema):
        plan = qplan(q0, access_schema)
        assert compiled_for(plan) is compiled_for(plan)
        assert isinstance(plan.compiled, CompiledPlan)

    def test_missing_index_raises_execution_error(self, q0, access_schema, small_social_db):
        plan = qplan(q0, access_schema)
        compiled = compile_plan(plan)
        from repro.access.indexes import AccessIndexes

        with pytest.raises(ExecutionError, match="no index available"):
            compiled.bind(AccessIndexes())


class TestParameterSlots:
    def test_unbound_slot_raises(self, small_social_db):
        prepared = prepare_query(_q0_template(), social_access_schema())
        executor = prepared._executor
        indexes = executor.prepare(small_social_db, prepared.prepared.plan.access_schema)
        with pytest.raises(ExecutionError, match="unbound parameter slot"):
            executor.execute(prepared.prepared.plan, small_social_db, indexes=indexes)

    def test_prepared_execution_matches_interpreted_per_binding(self, small_social_db):
        prepared = prepare_query(_q0_template(), social_access_schema())
        executor = prepared._executor
        plan = prepared.prepared.plan
        indexes = prepared.warm(small_social_db)
        for album, user in [("a0", "u0"), ("a1", "u0"), ("a0", "u9")]:
            params = prepared.prepared.bind_values({"album": album, "user": user})
            _both(plan, small_social_db, params=params, indexes=indexes)


def _q0_template() -> ParameterizedQuery:
    from repro.workloads import query_q1

    query = query_q1()
    return ParameterizedQuery(
        query,
        {"album": query.ref("ia", "album_id"), "user": query.ref("f", "user_id")},
    )


class TestMixedTypeKeys:
    """Regression: probe keys of mutually incomparable types must execute.

    The interpreted executor used to order candidate keys with
    ``sorted(keys, key=repr)``; both paths now use insertion-ordered dict
    dedup, which neither compares nor reprs the values.
    """

    @pytest.fixture()
    def mixed_db(self):
        schema = schema_from_mapping(
            {"orders": ["customer", "item"], "items": ["item", "price"]}
        )
        database = Database(schema)
        # Item keys deliberately mix ints, strings and tuples.
        database.extend(
            "orders", [("c0", 1), ("c0", "widget"), ("c0", (2, "kit")), ("c1", 1)]
        )
        database.extend(
            "items", [(1, 10), ("widget", 20), ((2, "kit"), 30), (99, 40)]
        )
        return database

    @pytest.fixture()
    def mixed_plan(self, mixed_db):
        access = AccessSchema(
            [
                AccessConstraint("orders", x=("customer",), y=("item",), bound=10),
                AccessConstraint("items", x=("item",), y=("price",), bound=5),
            ]
        )
        builder = SPCQueryBuilder(mixed_db.schema, name="mixed")
        query = (
            builder.add_atom("orders", alias="o")
            .add_atom("items", alias="i")
            .where_eq("o.item", "i.item")
            .where_const("o.customer", "c0")
            .select("i.item")
            .select("i.price")
            .build()
        )
        return qplan(query, access)

    def test_mixed_type_keys_execute_on_both_paths(self, mixed_db, mixed_plan):
        result = _both(mixed_plan, mixed_db)
        assert result.as_set == {(1, 10), ("widget", 20), ((2, "kit"), 30)}

    def test_probe_order_is_deterministic(self, mixed_db, mixed_plan):
        executor = BoundedExecutor()
        first = executor.execute(mixed_plan, mixed_db)
        second = executor.execute(mixed_plan, mixed_db)
        assert first.rows.rows == second.rows.rows


class TestDedupCharging:
    def test_duplicate_candidate_keys_charged_once(self, small_social_db):
        access = social_access_schema()
        indexes = build_access_indexes(small_social_db, access)
        constraint = access.for_relation("in_album")[0]
        index = indexes.for_constraint(constraint)
        before = small_social_db.counter.snapshot()
        rows = index.fetch_many([("a0",), ("a0",), ("a0",)])
        delta = small_social_db.counter.since(before)
        assert delta.lookups == 1  # deduped before probing
        assert len(rows) == 2

    def test_probe_many_dedups_keys_and_rows(self, small_social_db):
        index = small_social_db.build_index("in_album", key=["album_id"])
        before = small_social_db.counter.snapshot()
        rows = index.probe_many([("a0",), ("a0",)])
        delta = small_social_db.counter.since(before)
        assert delta.lookups == 1
        assert rows == index.probe(("a0",))


class TestSharedScanConstruction:
    def test_shared_scan_builds_identical_indexes(self, small_social_db, access_schema):
        shared = build_access_indexes(small_social_db, access_schema)
        for constraint in access_schema:
            # A fresh database over the same relations, indexed one constraint
            # at a time, must probe identically to the shared-scan build.
            separate_db = Database.from_relations(small_social_db.relations())
            separate = build_access_indexes(separate_db, AccessSchema([constraint]))
            shared_index = shared.for_constraint(constraint)
            separate_index = separate.for_constraint(constraint)
            assert shared_index.key == separate_index.key == constraint.x
            for key_value in shared_index.index._buckets:
                assert shared_index.fetch(key_value) == separate_index.fetch(key_value)

    def test_prepare_detects_schema_mutation(self, access_schema, small_social_db):
        """Regression: growing a prepared AccessSchema in place must rebuild.

        prepare()'s O(1) memo is fingerprinted by the schema's cardinality, so
        an ``add()`` after preparation re-takes the full path and builds the
        new constraint's index instead of serving the stale memo entry.
        """
        executor = BoundedExecutor()
        constraints = list(access_schema)
        partial = AccessSchema(constraints[:1])
        executor.prepare(small_social_db, partial)
        for constraint in constraints[1:]:
            partial.add(constraint)
        indexes = executor.prepare(small_social_db, partial)
        for constraint in constraints:
            assert constraint in indexes

    def test_one_scan_per_relation(self, schema, monkeypatch):
        database = Database(schema)
        database.extend("in_album", [("p1", "a0")])
        database.extend("friends", [("u0", "u1")])
        database.extend("tagging", [("p1", "u1", "u0")])
        calls: dict[str, int] = {}
        from repro.relational.relation import Relation

        original = Relation.tuples

        def counting(self):
            calls[self.schema.name] = calls.get(self.schema.name, 0) + 1
            return original(self)

        monkeypatch.setattr(Relation, "tuples", counting)
        build_access_indexes(database, social_access_schema())
        # A0 has two constraints on tagging, yet each relation is scanned once.
        assert all(count == 1 for count in calls.values()), calls
