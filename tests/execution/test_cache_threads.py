"""Concurrency regressions: cache counters, engine caches, per-thread accounting.

The bug being pinned: ``LRUCache``'s hit/miss counters were bare ``+= 1``
read-modify-write sequences, so under concurrent lookups two threads could
read the same value and one increment was lost — ``engine.cache_info()``
under-counted.  The counters now update under the cache's lock, making
``hits + misses == lookups issued`` an exact invariant, which these tests
hammer from 8 threads.
"""

from __future__ import annotations

import threading

from repro.execution import BoundedEngine
from repro.execution.cache import LRUCache
from repro.relational.statistics import AccessCounter
from repro.spc import ParameterizedQuery
from repro.workloads import query_q0, query_q1, social_access_schema

THREADS = 8
LOOKUPS_PER_THREAD = 2_000


class TestLRUCacheUnderThreads:
    def test_hit_miss_counters_are_exact_under_contention(self):
        """8 threads x 2000 lookups: not a single hit or miss may be dropped."""
        cache: LRUCache[int, int] = LRUCache(capacity=64, name="hammered")
        for key in range(64):
            cache.put(key, key)
        barrier = threading.Barrier(THREADS)

        def hammer(worker: int) -> None:
            barrier.wait()  # maximize interleaving
            for i in range(LOOKUPS_PER_THREAD):
                # Every worker alternates guaranteed hits (0..63) with
                # guaranteed misses (>= 1000, never inserted).
                cache.get((worker * i) % 64)
                cache.get(1000 + (worker * LOOKUPS_PER_THREAD) + i)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = cache.stats
        assert stats.hits == THREADS * LOOKUPS_PER_THREAD
        assert stats.misses == THREADS * LOOKUPS_PER_THREAD
        assert stats.requests == 2 * THREADS * LOOKUPS_PER_THREAD

    def test_concurrent_puts_keep_size_within_capacity(self):
        cache: LRUCache[int, int] = LRUCache(capacity=32, name="filled")

        def fill(worker: int) -> None:
            for i in range(500):
                cache.put(worker * 1000 + i, i)

        threads = [threading.Thread(target=fill, args=(w,)) for w in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats
        assert len(cache) <= 32
        assert stats.size <= 32
        assert stats.evictions == THREADS * 500 - stats.size


class TestEngineCachesUnderThreads:
    def test_cache_info_counters_consistent_under_concurrent_serving(self):
        """8 threads prepare/plan concurrently; cache_info sums must add up."""
        engine = BoundedEngine(social_access_schema())
        q1 = query_q1()
        template = ParameterizedQuery(
            q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
        )
        per_thread = 300
        barrier = threading.Barrier(THREADS)

        def serve_plans(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                engine.prepare_query(template)
                engine.plan(query_q0(album_id=f"a{(worker * i) % 5}", user_id="u0"))

        threads = [
            threading.Thread(target=serve_plans, args=(w,)) for w in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        info = engine.cache_info()
        # Every prepare_query call is exactly one lookup on the prepared cache.
        assert info["prepared"].requests == THREADS * per_thread
        # Every plan() call is exactly one lookup on the plan cache; distinct
        # bound constants yield distinct keys so both hits and misses occur.
        assert info["plan"].requests == THREADS * per_thread
        assert info["plan"].hits + info["plan"].misses == info["plan"].requests
        assert info["plan"].hits > 0 and info["plan"].misses > 0


class TestAccessCounterThreadSlots:
    def test_aggregate_is_sum_of_thread_slots(self):
        counter = AccessCounter()
        counter.record_probe(5)  # main thread's slot

        def record(amount: int) -> None:
            for _ in range(100):
                counter.record_probe(amount)
                counter.record_scan(amount)

        threads = [threading.Thread(target=record, args=(w + 1,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = 100 * (1 + 2 + 3 + 4)
        assert counter.index_probed == 5 + expected
        assert counter.scanned == expected
        assert counter.lookups == 1 + 400
        assert counter.scans == 400

    def test_snapshot_isolates_the_calling_thread(self):
        """A worker's snapshot/since window never sees a neighbour's accesses."""
        counter = AccessCounter()
        deltas: dict[int, int] = {}
        barrier = threading.Barrier(4)

        def execute(worker: int) -> None:
            barrier.wait()
            before = counter.snapshot()
            for _ in range(50):
                counter.record_probe(worker + 1)
            deltas[worker] = counter.since(before).total

        threads = [threading.Thread(target=execute, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert deltas == {0: 50, 1: 100, 2: 150, 3: 200}
        # ... while the aggregate view sums everyone.
        assert counter.index_probed == 50 + 100 + 150 + 200

    def test_dead_thread_totals_survive_slot_compaction(self):
        """Exited workers' counts fold into retired totals, not into a leak."""
        counter = AccessCounter()

        def one_shot() -> None:
            counter.record_probe(7)

        for _ in range(20):  # 20 short-lived "worker pools"
            thread = threading.Thread(target=one_shot)
            thread.start()
            thread.join()
        counter.record_probe(1)  # registers the main thread, compacting
        assert counter.index_probed == 20 * 7 + 1
        assert counter.lookups == 21
        # Live-slot bookkeeping stays O(live threads): the 20 dead threads'
        # slots have been folded away.
        assert len(counter._slots) <= 2
        counter.reset()
        assert counter.index_probed == 0 and counter.total == 0
