"""Unit tests for evalDQ, the baseline executors and the BoundedEngine."""

import pytest

from repro.access import AccessConstraint, AccessSchema, build_access_indexes
from repro.core import ebcheck
from repro.errors import ConstraintViolationError, NotEffectivelyBoundedError
from repro.execution import (
    BoundedEngine,
    BoundedExecutor,
    NaiveExecutor,
    NestedLoopExecutor,
    eval_dq,
)
from repro.planning import qplan
from repro.relational import Database
from repro.spc import SPCQueryBuilder
from repro.workloads import generate_social_database, query_q0


class TestEvalDQ:
    def test_q0_answer_on_small_instance(self, q0, access_schema, small_social_db):
        plan = qplan(q0, access_schema)
        result = eval_dq(plan, small_social_db)
        assert result.as_set == {("p1",)}
        assert result.stats.strategy == "bounded"
        assert result.stats.plan_bound == 7000

    def test_access_stays_within_plan_bound(self, q0, access_schema):
        database = generate_social_database(scale=1.0, seed=3)
        plan = qplan(q0, access_schema)
        result = eval_dq(plan, database)
        assert result.stats.tuples_accessed <= plan.total_bound
        assert result.stats.index_probed == result.stats.tuples_accessed
        assert result.stats.scanned == 0  # evalDQ never scans

    def test_matches_naive_and_nested_loop(self, q0, access_schema, small_social_db):
        plan = qplan(q0, access_schema)
        bounded = eval_dq(plan, small_social_db)
        naive = NaiveExecutor().execute(q0, small_social_db)
        nested = NestedLoopExecutor().execute(q0, small_social_db)
        assert bounded.as_set == naive.as_set == nested.as_set

    def test_empty_answer_when_constants_missing(self, access_schema, small_social_db):
        query = query_q0(album_id="a_nonexistent", user_id="u0")
        plan = qplan(query, access_schema)
        result = eval_dq(plan, small_social_db)
        assert result.is_empty

    def test_boolean_query_execution(self, q2_boolean, access_schema, small_social_db):
        plan = qplan(q2_boolean, access_schema)
        result = eval_dq(plan, small_social_db)
        assert result.boolean_value is True
        negative = query_q0(album_id="a1", user_id="u2").boolean_version()
        result = eval_dq(qplan(negative, access_schema), small_social_db)
        assert result.boolean_value is False

    def test_bound_enforcement_detects_violating_database(self, q0, access_schema, schema):
        database = Database(schema)
        database.extend("in_album", [("p1", "a0")])
        database.extend("friends", [("u0", "u1")])
        # Two taggers for the same (photo, taggee) violate the bound of 1.
        database.extend("tagging", [("p1", "u1", "u0"), ("p1", "u2", "u0")])
        plan = qplan(q0, access_schema)
        with pytest.raises(ConstraintViolationError):
            eval_dq(plan, database, enforce_bounds=True)
        result = eval_dq(plan, database, enforce_bounds=False)
        assert result.as_set == {("p1",)}

    def test_executor_reuses_prepared_indexes(self, q0, access_schema, small_social_db):
        executor = BoundedExecutor()
        indexes = executor.prepare(small_social_db, access_schema)
        again = executor.prepare(small_social_db, access_schema)
        assert len(indexes) == len(again)
        plan = qplan(q0, access_schema)
        result = executor.execute(plan, small_social_db, indexes)
        assert result.as_set == {("p1",)}

    def test_step_sizes_recorded(self, q0, access_schema, small_social_db):
        plan = qplan(q0, access_schema)
        result = eval_dq(plan, small_social_db)
        assert len(result.details["step_sizes"]) == plan.num_steps

    def test_parameterless_witness_occurrence(self, schema, access_schema, small_social_db):
        with_domain = access_schema.merged(
            AccessSchema([AccessConstraint("in_album", [], ["album_id"], 100)])
        )
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .add_atom("in_album", alias="ia")
            .where_const("f.user_id", "u0")
            .select("f.friend_id")
            .build()
        )
        plan = qplan(query, with_domain)
        indexes = build_access_indexes(small_social_db, with_domain)
        result = BoundedExecutor().execute(plan, small_social_db, indexes)
        naive = NaiveExecutor().execute(query, small_social_db)
        assert result.as_set == naive.as_set == {("u1",), ("u2",)}
        # With an empty in_album the witness fails and the answer is empty.
        empty_album = Database(schema)
        empty_album.extend("friends", [("u0", "u1")])
        result = eval_dq(qplan(query, with_domain), empty_album)
        assert result.is_empty


class TestNaiveExecutors:
    def test_naive_scans_everything(self, q0, access_schema, small_social_db):
        result = NaiveExecutor().execute(q0, small_social_db)
        assert result.stats.scanned == small_social_db.total_tuples
        assert result.stats.strategy == "naive"

    def test_nested_loop_matches_naive(self, access_schema, small_social_db, schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .add_atom("tagging", alias="t")
            .where_eq("f.friend_id", "t.tagger_id")
            .select("f.user_id", "t.photo_id")
            .build()
        )
        naive = NaiveExecutor().execute(query, small_social_db)
        nested = NestedLoopExecutor().execute(query, small_social_db)
        assert naive.as_set == nested.as_set

    def test_pure_product_query(self, schema, small_social_db):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .add_atom("in_album", alias="ia")
            .select("f.user_id", "ia.album_id")
            .build()
        )
        naive = NaiveExecutor().execute(query, small_social_db)
        assert len(naive) == 2 * 2  # distinct user_ids {u0, u1} x albums {a0, a1}


class TestBoundedEngine:
    def test_check_reports_plan_for_eb_query(self, q0, access_schema):
        engine = BoundedEngine(access_schema)
        report = engine.check(q0)
        assert report.bounded and report.effectively_bounded
        assert report.access_bound == 7000
        assert report.suggested_parameters is None
        assert "7000" in report.describe()

    def test_check_suggests_parameters_for_non_eb_query(self, q1, access_schema):
        engine = BoundedEngine(access_schema)
        report = engine.check(q1)
        assert not report.effectively_bounded
        assert report.suggested_parameters
        assert {r.attribute for r in report.suggested_parameters} >= {"album_id", "user_id"}

    def test_execute_uses_bounded_plan_when_possible(self, q0, access_schema, small_social_db):
        engine = BoundedEngine(access_schema)
        engine.prepare(small_social_db)
        result = engine.execute(q0, small_social_db)
        assert result.stats.strategy == "bounded"
        assert result.as_set == {("p1",)}

    def test_execute_falls_back_to_naive(self, q1, access_schema, small_social_db):
        engine = BoundedEngine(access_schema, fallback_to_naive=True)
        result = engine.execute(q1, small_social_db)
        assert result.stats.strategy == "naive"
        strict = BoundedEngine(access_schema, fallback_to_naive=False)
        with pytest.raises(NotEffectivelyBoundedError):
            strict.execute(q1, small_social_db)

    def test_plan_cache_returns_same_object(self, q0, access_schema):
        engine = BoundedEngine(access_schema)
        assert engine.plan(q0) is engine.plan(q0)

    def test_execute_naive_for_comparison(self, q0, access_schema, small_social_db):
        engine = BoundedEngine(access_schema)
        engine.prepare(small_social_db)
        bounded = engine.execute(q0, small_social_db)
        baseline = engine.execute_naive(q0, small_social_db)
        assert bounded.as_set == baseline.as_set
        assert baseline.stats.tuples_accessed >= bounded.stats.tuples_accessed

    def test_engine_consistent_with_ebcheck(self, access_schema, q0, q1, q2_boolean):
        engine = BoundedEngine(access_schema)
        for query in (q0, q1, q2_boolean):
            assert engine.is_effectively_bounded(query) == ebcheck(
                query, access_schema
            ).effectively_bounded
