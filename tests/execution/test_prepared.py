"""Prepared parameterized plans: compile-once / execute-many serving path.

Covers the prepared-plan subsystem (slot extraction, binding validation,
correctness against the unprepared path) and the serving-path cache fixes:
the weakref-keyed index cache, the capped LRU plan cache and the negative
effective-boundedness cache.
"""

from __future__ import annotations

import gc

import pytest

from repro.errors import (
    ExecutionError,
    NotEffectivelyBoundedError,
    QueryError,
    UnsatisfiableQueryError,
)
from repro.execution import (
    BoundedEngine,
    BoundedExecutor,
    LRUCache,
    NaiveExecutor,
    prepare_query,
)
from repro.planning import ParamSource, prepare_plan, qplan
from repro.relational import Database
from repro.spc import ConstEq, ParameterizedQuery, ParamToken
from repro.workloads import generate_social_database


@pytest.fixture()
def template(q1):
    """Q1 as a form template: album and user supplied per request."""
    return ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )


# ---------------------------------------------------------------------------
# compilation / slot extraction
# ---------------------------------------------------------------------------


def test_prepared_plan_has_named_slots(template, access_schema):
    prepared = prepare_plan(template, access_schema)
    assert set(prepared.slots) == {"album", "user"}
    assert prepared.total_bound == 7000  # the paper's Example 1 bound

    param_slots = {
        source.name
        for step in prepared.plan.steps
        for source in step.key_sources.values()
        if isinstance(source, ParamSource)
    }
    assert param_slots == {"album", "user"}


def test_prepared_plan_leaves_no_tokens_in_key_sources(template, access_schema):
    prepared = prepare_plan(template, access_schema)
    for step in prepared.plan.steps:
        for source in step.key_sources.values():
            assert not isinstance(getattr(source, "value", None), ParamToken)


def test_prepared_plan_matches_per_binding_plan_bound(template, access_schema):
    """The template plan's bound equals any concrete binding's plan bound."""
    prepared = prepare_plan(template, access_schema)
    concrete = qplan(template.bind(album="a0", user="u0"), access_schema)
    assert prepared.total_bound == concrete.total_bound
    assert prepared.plan.num_steps == concrete.num_steps


def test_prepare_rejects_non_effectively_bounded_template(q1, access_schema):
    """A template whose instantiation leaves Q1 unbounded is rejected up front."""
    album_only = ParameterizedQuery(q1, {"album": q1.ref("ia", "album_id")})
    with pytest.raises(NotEffectivelyBoundedError):
        prepare_query(album_only, access_schema)


def test_restate_equals_template_bind(template, access_schema):
    prepared = prepare_plan(template, access_schema)
    assert prepared.restate(album="a0", user="u0") == template.bind(album="a0", user="u0")


# ---------------------------------------------------------------------------
# execution correctness
# ---------------------------------------------------------------------------


def test_prepared_execution_matches_unprepared(template, access_schema, small_social_db):
    engine = BoundedEngine(access_schema)
    prepared = engine.prepare_query(template)
    result = prepared.execute(small_social_db, album="a0", user="u0")
    assert result.as_set == {("p1",)}

    unprepared = engine.execute(template.bind(album="a0", user="u0"), small_social_db)
    assert result.as_set == unprepared.as_set
    assert result.stats.tuples_accessed == unprepared.stats.tuples_accessed
    assert result.stats.tuples_accessed <= prepared.total_bound


def test_prepared_execution_over_many_bindings(template, access_schema):
    database = generate_social_database(scale=0.3, seed=11)
    engine = BoundedEngine(access_schema)
    engine.prepare(database)
    prepared = engine.prepare_query(template)
    naive = NaiveExecutor()
    for index in range(12):
        binding = {"album": f"a{index}", "user": f"u{index * 3}"}
        served = prepared.execute(database, **binding)
        oracle = naive.execute(template.bind(**binding), database)
        assert served.as_set == oracle.as_set
        assert served.stats.tuples_accessed <= prepared.total_bound


def test_execute_many_serves_a_batch(template, access_schema, small_social_db):
    prepared = prepare_query(template, access_schema)
    bindings = [{"album": "a0", "user": "u0"}, {"album": "a1", "user": "u0"}]
    results = prepared.execute_many(small_social_db, bindings)
    assert [r.as_set for r in results] == [frozenset({("p1",)}), frozenset({("p3",)})]
    assert prepared.executions == 2


def test_prepared_boolean_template(q1, access_schema, small_social_db):
    template = ParameterizedQuery(
        q1.boolean_version(),
        {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")},
    )
    prepared = prepare_query(template, access_schema)
    assert prepared.execute(small_social_db, album="a0", user="u0").boolean_value
    assert not prepared.execute(small_social_db, album="a1", user="u2").boolean_value


# ---------------------------------------------------------------------------
# binding validation
# ---------------------------------------------------------------------------


def test_missing_and_unknown_parameters_raise(template, access_schema, small_social_db):
    prepared = prepare_query(template, access_schema)
    with pytest.raises(QueryError, match="missing"):
        prepared.execute(small_social_db, album="a0")
    with pytest.raises(QueryError, match="unknown"):
        prepared.execute(small_social_db, album="a0", user="u0", extra=1)


def test_equated_parameters_share_a_slot(q1, access_schema, small_social_db):
    """Σ_Q-equivalent parameters collapse into one slot and must agree."""
    template = ParameterizedQuery(
        q1,
        {
            "album": q1.ref("ia", "album_id"),
            "user": q1.ref("f", "user_id"),
            "taggee": q1.ref("t", "taggee_id"),  # equated with f.user_id by Σ_Q
        },
    )
    prepared = prepare_query(template, access_schema)
    assert len(prepared.slots) == 2
    assert prepared.prepared.slot_members["user"] == ("user", "taggee")

    agreeing = prepared.execute(small_social_db, album="a0", user="u0", taggee="u0")
    assert agreeing.as_set == {("p1",)}
    with pytest.raises(UnsatisfiableQueryError):
        prepared.execute(small_social_db, album="a0", user="u0", taggee="u1")


def test_executing_slotted_plan_without_params_raises(template, access_schema, small_social_db):
    prepared = prepare_plan(template, access_schema)
    with pytest.raises(ExecutionError, match="unbound parameter slot"):
        BoundedExecutor().execute(prepared.plan, small_social_db)


def test_symbolic_binding_round_trip(template):
    symbolic, tokens = template.bind_symbolic()
    assert set(tokens) == {"album", "user"}
    token_conditions = [
        condition
        for condition in symbolic.conditions
        if isinstance(condition, ConstEq) and isinstance(condition.value, ParamToken)
    ]
    assert {condition.value.name for condition in token_conditions} == {"album", "user"}


# ---------------------------------------------------------------------------
# engine caches
# ---------------------------------------------------------------------------


def test_engine_caches_prepared_queries(template, access_schema):
    engine = BoundedEngine(access_schema)
    first = engine.prepare_query(template)
    second = engine.prepare_query(template)
    assert first is second
    equivalent = ParameterizedQuery(
        template.query,
        {"album": template.query.ref("ia", "album_id"), "user": template.query.ref("f", "user_id")},
    )
    assert engine.prepare_query(equivalent) is first
    info = engine.cache_info()
    assert info["prepared"].hits == 2
    assert info["prepared"].misses == 1


def test_negative_verdict_cached_across_bindings(q1, access_schema, small_social_db):
    """A not-effectively-bounded template is classified once, not per request."""
    album_only = ParameterizedQuery(q1, {"album": q1.ref("ia", "album_id")})
    engine = BoundedEngine(access_schema)
    for index in range(5):
        result = engine.execute(album_only.bind(album=f"a{index}"), small_social_db)
        assert result.stats.strategy == "naive"
    info = engine.cache_info()
    assert info["negative"].misses == 1  # EBCheck ran for the first binding only
    assert info["negative"].hits == 4


def test_negative_cache_does_not_mask_unsatisfiable_queries(q0, access_schema, small_social_db):
    """Shape-keyed caching must not reroute unsatisfiable queries to naive."""
    engine = BoundedEngine(access_schema)
    contradictory = q0.with_constants({q0.ref("ia", "album_id"): "a1"})  # already a0
    with pytest.raises(UnsatisfiableQueryError):
        engine.execute(contradictory, small_social_db)


def test_plan_cache_is_size_capped(q0, access_schema, small_social_db):
    engine = BoundedEngine(access_schema, plan_cache_size=4)
    for index in range(10):
        query = q0.with_constants({q0.ref("t", "tagger_id"): f"u{index}"})
        engine.execute(query, small_social_db)
    stats = engine.cache_info()["plan"]
    assert stats.size <= 4
    assert stats.evictions >= 6
    assert stats.misses == 10


def test_plan_cache_hits_for_repeated_query(q0, access_schema, small_social_db):
    engine = BoundedEngine(access_schema)
    for _ in range(3):
        engine.execute(q0, small_social_db)
    stats = engine.cache_info()["plan"]
    assert stats.misses == 1
    assert stats.hits == 2


def test_lru_cache_evicts_least_recently_used():
    cache: LRUCache[int, str] = LRUCache(2, name="test")
    cache.put(1, "a")
    cache.put(2, "b")
    assert cache.get(1) == "a"  # refresh 1 -> 2 becomes the eviction victim
    cache.put(3, "c")
    assert 2 not in cache
    assert cache.get(1) == "a"
    assert cache.get(3) == "c"
    stats = cache.stats
    assert stats.evictions == 1
    assert stats.size == 2
    assert stats.hits == 3 and stats.misses == 0


def test_lru_cache_rejects_nonpositive_capacity():
    with pytest.raises(ExecutionError):
        LRUCache(0)


# ---------------------------------------------------------------------------
# index-cache lifetime (the id() reuse bug)
# ---------------------------------------------------------------------------


def _tiny_db(schema, photo: str) -> Database:
    database = Database(schema)
    database.extend("in_album", [(photo, "a0")])
    database.extend("friends", [("u0", "u1")])
    database.extend("tagging", [(photo, "u1", "u0")])
    return database


def test_sequential_databases_never_share_index_cache(schema, access_schema, q0):
    """A collected database must not leak its indexes to a successor.

    With the old ``id(database)``-keyed cache, a new Database allocated at the
    same address as a collected one silently served the *old* indexes.  The
    weakref-keyed cache drops entries with their database, so each database
    always gets indexes built from its own rows.
    """
    executor = BoundedExecutor()
    plan = qplan(q0, access_schema)

    first = _tiny_db(schema, "p1")
    assert executor.execute(plan, first).as_set == {("p1",)}
    del first
    gc.collect()
    assert len(executor._index_cache) == 0  # entry died with its database

    second = _tiny_db(schema, "p2")
    result = executor.execute(plan, second)
    # Fresh indexes: the answer comes from the second database's rows.
    assert result.as_set == {("p2",)}


def test_index_cache_entries_are_per_database(schema, access_schema, q0):
    executor = BoundedExecutor()
    first = _tiny_db(schema, "p1")
    second = _tiny_db(schema, "p2")
    indexes_first = executor.prepare(first, access_schema)
    indexes_second = executor.prepare(second, access_schema)
    assert indexes_first is not indexes_second
    assert executor.prepare(first, access_schema) is indexes_first
    assert len(executor._index_cache) == 2
