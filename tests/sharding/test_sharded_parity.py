"""Hypothesis: sharded-vs-serial parity on random TFACC / MOT batches.

The sharded router's contract is the thread service's, one tier up: N shard
*processes* must never change an answer or a charge.  For random request
batches (random bindings, random sizes, hit-and-miss keys) the sharded
results must be **byte-identical** to a serial prepared-execution loop, the
summed per-shard ``tuples_accessed`` must equal the unsharded charge, and
every charge must respect the statically proven Σ Mᵢ certificate — summed
over the batch, summed certificates are the ceiling.

The shard services are module-cached: Hypothesis redraws batches, not
process fleets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.execution import BoundedEngine
from repro.sharding import ShardMap, ShardedQueryService
from repro.spc import ParameterizedQuery
from repro.spc.builder import SPCQueryBuilder
from repro.workloads import get_workload
from repro.workloads.mot import mot_access_schema, mot_schema
from repro.workloads.tfacc import tfacc_access_schema, tfacc_schema


def _tfacc_template() -> ParameterizedQuery:
    """Vehicles in a force's accidents on a date (the serving-benchmark form)."""
    query = (
        SPCQueryBuilder(tfacc_schema(), name="force_vehicles_on_date")
        .add_atom("accident", alias="a")
        .add_atom("vehicle", alias="v")
        .where_eq("a.accident_id", "v.accident_id")
        .select("a.accident_id")
        .select("v.vehicle_id")
        .select("v.vehicle_type")
        .build()
    )
    return ParameterizedQuery(
        query,
        {"date": query.ref("a", "date"), "force": query.ref("a", "police_force")},
    )


def _mot_template() -> ParameterizedQuery:
    """A vehicle's test history with its garage's details."""
    query = (
        SPCQueryBuilder(mot_schema(), name="vehicle_history")
        .add_atom("mot_test", alias="m")
        .add_atom("garage", alias="g")
        .where_eq("m.garage_id", "g.garage_id")
        .select("m.test_id")
        .select("m.test_result")
        .select("g.garage_name")
        .build()
    )
    return ParameterizedQuery(query, {"vehicle": query.ref("m", "vehicle_id")})


_TFACC_BINDINGS = st.fixed_dictionaries(
    {
        # A mix of present and absent keys: parity must hold for misses too.
        "date": st.sampled_from(
            ["2004-01-03", "2004-02-11", "2004-03-07", "2004-06-19", "2030-01-01"]
        ),
        "force": st.sampled_from([f"force_{i:02d}" for i in (1, 2, 3, 7, 11, 49)]),
    }
)

_MOT_BINDINGS = st.fixed_dictionaries(
    {"vehicle": st.sampled_from([f"v{i:07d}" for i in range(0, 60, 3)] + ["missing"])}
)

_CASES = {
    "tfacc": (_tfacc_template, tfacc_access_schema, _TFACC_BINDINGS),
    "mot": (_mot_template, mot_access_schema, _MOT_BINDINGS),
}

#: workload -> (service, serial prepared, database); built once, closed at exit.
_FIXTURES: dict[str, tuple] = {}


@pytest.fixture(scope="module")
def sharded_case(request):
    def _build(workload: str):
        if workload not in _FIXTURES:
            template_factory, access_factory, _ = _CASES[workload]
            template = template_factory()
            access = access_factory()
            database = get_workload(workload).database(scale=0.02, seed=7)
            engine = BoundedEngine(access)
            prepared = engine.prepare_query(template)
            prepared.warm(database)
            shard_map = ShardMap.for_template(template, access, num_shards=2)
            service = ShardedQueryService(database, access, shard_map=shard_map)
            _FIXTURES[workload] = (service, template, prepared, database)
        return _FIXTURES[workload]

    yield _build
    for service, *_ in _FIXTURES.values():
        service.close()
    _FIXTURES.clear()


@pytest.mark.parametrize("workload", sorted(_CASES))
@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_sharded_batches_match_serial(sharded_case, workload, data):
    service, template, prepared, database = sharded_case(workload)
    binding_strategy = _CASES[workload][2]
    batch = data.draw(st.lists(binding_strategy, min_size=1, max_size=25))

    serial = [prepared.execute(database, **binding) for binding in batch]
    sharded = service.run_many(template, batch)

    # Byte-identical answers, identical per-request charges.
    assert [r.tuples for r in sharded] == [r.tuples for r in serial]
    assert [r.stats.tuples_accessed for r in sharded] == [
        r.stats.tuples_accessed for r in serial
    ]
    # Summed per-shard charge == the unsharded charge of the batch, and the
    # batch's summed certificates bound it from above.
    certificate = prepared.certificate
    assert certificate is not None
    sharded_total = sum(r.stats.tuples_accessed for r in sharded)
    serial_total = sum(r.stats.tuples_accessed for r in serial)
    assert sharded_total == serial_total
    assert sharded_total <= certificate.total_bound * len(batch)
    assert all(r.stats.tuples_accessed <= certificate.total_bound for r in sharded)
