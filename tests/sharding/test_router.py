"""Router behavior: parity, typed errors across the boundary, admission control."""

from __future__ import annotations

import pytest

from repro.errors import (
    BudgetExceededError,
    QueryError,
    ServiceOverloadedError,
    ServiceTimeout,
    ShardRoutingError,
)
from repro.execution import BoundedEngine
from repro.sharding import ShardMap, ShardedQueryService
from repro.spc import ParameterizedQuery
from repro.storage.latency import LatencyInjectingBackend
from repro.workloads import query_q1


# -- parity --------------------------------------------------------------------------


def test_keyed_parity_with_serial(keyed_service, form_template, bindings, serial_reference):
    """Byte-identical answers *and* identical charges, per binding."""
    served = keyed_service.run_many(form_template, bindings)
    assert [r.tuples for r in served] == [r.tuples for r in serial_reference]
    assert [r.stats.tuples_accessed for r in served] == [
        r.stats.tuples_accessed for r in serial_reference
    ]


def test_spread_parity_with_serial(spread_service, form_template, bindings, serial_reference):
    served = spread_service.run_many(form_template, bindings)
    assert [r.tuples for r in served] == [r.tuples for r in serial_reference]
    assert [r.stats.tuples_accessed for r in served] == [
        r.stats.tuples_accessed for r in serial_reference
    ]


def test_keyed_routing_spreads_over_shards(keyed_service, form_template, bindings):
    """The album keys must actually land on both shards (placement sanity)."""
    keyed_service.run_many(form_template, bindings)
    routed = keyed_service.stats(shard_timeout=None)["routed"]
    assert all(count > 0 for count in routed.values()), routed


def test_sharded_charge_accounting(keyed_service, form_template, bindings, serial_reference):
    """Summed per-shard ``tuples_accessed`` equals the unsharded charge, and
    every execution stays under the certified Σ Mᵢ bound."""
    before = keyed_service.stats(shard_timeout=None)["execution"]["tuples_accessed"]
    keyed_service.run_many(form_template, bindings)
    after = keyed_service.stats(shard_timeout=None)["execution"]["tuples_accessed"]
    serial_total = sum(r.stats.tuples_accessed for r in serial_reference)
    assert after - before == serial_total
    per_shard = keyed_service.shard_stats()
    shard_total = sum(
        stats["execution"]["tuples_accessed"]
        for stats in per_shard.values()
        if stats.get("alive")
    )
    assert shard_total >= after  # shard counters also cover earlier tests' requests


# -- typed errors across the process boundary ----------------------------------------


def test_unroutable_template_raises_before_any_ipc(social_db, access, form_template):
    """A template the analysis cannot prove safe is refused at submit time,
    synchronously, with the typed routing error.  Partitioning ``tagging`` on
    ``photo_id`` is unsafe for Q1: its tagging probe keys photo_id from an
    ``in_album`` join column, so matches may live on any shard."""
    with ShardedQueryService(
        social_db, access, shard_map=ShardMap(2, {"tagging": ("photo_id",)})
    ) as service:
        with pytest.raises(ShardRoutingError):
            service.submit(form_template, album="a1", user="u1")
        assert service.stats(shard_timeout=None)["submitted"] == 0


def test_budget_error_propagates_typed(keyed_service, form_template):
    future = keyed_service.submit(form_template, album="a1", user="u1", budget=1)
    with pytest.raises(BudgetExceededError) as caught:
        future.result()
    assert caught.value.budget == 1
    assert caught.value.accessed > 1


def test_binding_errors_raise_synchronously(keyed_service, form_template):
    with pytest.raises(QueryError):
        keyed_service.submit(form_template, album="a1")  # missing "user"
    with pytest.raises(QueryError):
        keyed_service.submit(form_template, album="a1", user="u1", extra="x")


def test_deadline_exceeded_becomes_service_timeout(social_db, access, keyed_map):
    """A deadline shorter than one storage access times out across the
    boundary as the typed ServiceTimeout."""

    def slow(backend):
        return LatencyInjectingBackend(backend, access_latency=0.2, seed=1)

    with ShardedQueryService(
        social_db, access, shard_map=keyed_map, wrap=slow
    ) as service:
        q1 = query_q1()
        template = ParameterizedQuery(
            q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
        )
        future = service.submit(template, album="a1", user="u1", deadline=0.05)
        with pytest.raises(ServiceTimeout):
            future.result()
        assert service.stats(shard_timeout=None)["timeouts"] >= 1


# -- certificate-based admission control ---------------------------------------------


def test_certified_bound_admission_sheds_before_dispatch(social_db, access, keyed_map, form_template):
    """With ``max_inflight_bound`` below one certificate, every request is
    shed router-side — the shard processes never see a byte of it."""
    engine = BoundedEngine(access)
    bound = engine.prepare_query(form_template).certificate.total_bound
    with ShardedQueryService(
        social_db,
        access,
        shard_map=keyed_map,
        max_inflight_bound=bound - 1,
    ) as service:
        with pytest.raises(ServiceOverloadedError) as caught:
            service.submit(form_template, album="a1", user="u1")
        assert "max_inflight_bound" in str(caught.value)
        stats = service.stats()
        assert stats["shed_by_bound"] == 1
        assert stats["submitted"] == 0
        # No shard ever saw a request.
        assert all(
            shard["batches"] == 0
            for shard in stats["per_shard"].values()
            if shard.get("alive")
        )


def test_admission_admits_within_bound_and_releases(social_db, access, keyed_map, form_template):
    engine = BoundedEngine(access)
    bound = engine.prepare_query(form_template).certificate.total_bound
    with ShardedQueryService(
        social_db,
        access,
        shard_map=keyed_map,
        max_inflight_bound=bound,  # room for exactly one request at a time
    ) as service:
        for _ in range(3):  # serial requests each release their charge
            result = service.run(form_template, album="a1", user="u1")
            assert result.stats.tuples_accessed <= bound
        stats = service.stats(shard_timeout=None)
        assert stats["completed"] == 3
        assert stats["certified_bound_completed"] == 3 * bound
        assert all(v == 0 for v in stats["inflight_bound"].values())


def test_max_pending_sheds(social_db, access, keyed_map, form_template):
    def slow(backend):
        return LatencyInjectingBackend(backend, access_latency=0.05, seed=2)

    with ShardedQueryService(
        social_db, access, shard_map=keyed_map, max_pending=1, wrap=slow
    ) as service:
        first = service.submit(form_template, album="a1", user="u1")
        with pytest.raises(ServiceOverloadedError):
            for _ in range(20):  # both shards' slots must fill
                service.submit(form_template, album="a1", user="u1")
        first.result()


# -- merged monitoring ----------------------------------------------------------------


def test_stats_and_describe_merge_all_shards(keyed_service, form_template):
    keyed_service.run(form_template, album="a2", user="u2")
    stats = keyed_service.stats()
    assert stats["shards"] == 2
    assert set(stats["per_shard"]) == {0, 1}
    for shard in stats["per_shard"].values():
        assert shard["alive"]
        assert "execution" in shard
    text = keyed_service.describe()
    assert "2 shard processes" in text
    assert "shard 0" in text and "shard 1" in text
    assert "tuples accessed" in text


def test_repr(keyed_service):
    assert "ShardedQueryService" in repr(keyed_service)
