"""Placement (ShardMap), stable hashing, and the routing safety analysis."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.errors import ApiMisuseError, ShardRoutingError, UnknownAttributeError
from repro.planning.qplan import prepare_plan
from repro.sharding import Route, ShardMap, resolve_route
from repro.spc import ParameterizedQuery
from repro.spc.builder import SPCQueryBuilder
from repro.util import canonical_bytes, stable_hash, stable_shard
from repro.workloads import query_q1, social_access_schema
from repro.workloads.tfacc import tfacc_access_schema, tfacc_schema

# -- stable hashing ------------------------------------------------------------------


def test_stable_hash_is_process_stable():
    """The routing contract: the same key hashes identically in *every*
    process, regardless of interpreter hash randomization.  Builtin ``hash()``
    fails exactly this (PYTHONHASHSEED salts str/bytes hashing per process)."""
    values = [("accident", ("2019-03-07",)), ("spread", (("album", "a1"),)), 42, "x"]
    local = [stable_hash(value) for value in values]
    script = (
        "from repro.util import stable_hash\n"
        "print([stable_hash(v) for v in ["
        "('accident', ('2019-03-07',)), ('spread', (('album', 'a1'),)), 42, 'x']])"
    )
    env = dict(os.environ, PYTHONHASHSEED="12345", PYTHONPATH="src")
    output = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    ).stdout
    assert eval(output.strip()) == local


def test_stable_hash_folds_numerics_like_dict_keys():
    assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
    assert stable_hash(0) == stable_hash(0.0) == stable_hash(False)
    assert stable_hash(1.5) != stable_hash(1)


def test_stable_hash_distinguishes_types_and_structure():
    assert stable_hash("a") != stable_hash(b"a")
    assert stable_hash(("ab",)) != stable_hash(("a", "b"))
    assert stable_hash(None) != stable_hash("")
    assert canonical_bytes(("a", "b")) != canonical_bytes(("ab",))


def test_stable_hash_rejects_unsupported_types():
    with pytest.raises(ApiMisuseError):
        stable_hash({"a": 1})


def test_stable_shard_range_and_seed():
    shards = [stable_shard(("r", (i,)), 4) for i in range(100)]
    assert set(shards) == {0, 1, 2, 3}
    reseeded = [stable_shard(("r", (i,)), 4, seed=1) for i in range(100)]
    assert shards != reseeded
    with pytest.raises(ApiMisuseError):
        stable_shard("x", 0)


# -- ShardMap ------------------------------------------------------------------------


def test_shard_map_validation():
    with pytest.raises(ApiMisuseError):
        ShardMap(0)
    with pytest.raises(ApiMisuseError):
        ShardMap(2, {"accident": ()})


def test_slice_rows_partitions_exactly(social_db=None):
    shard_map = ShardMap(3, {"accident": ("date",)})
    rows = [(f"a{i}", f"2019-03-{i % 5:02d}", i) for i in range(50)]
    slices = shard_map.slice_rows(("accident_id", "date", "severity"), "accident", rows)
    assert sum(len(s) for s in slices) == len(rows)
    assert sorted(row for s in slices for row in s) == sorted(rows)
    for shard, bucket in enumerate(slices):
        for row in bucket:
            assert shard_map.shard_of_key("accident", (row[1],)) == shard
    # Same date -> same shard, always.
    by_date: dict[str, set[int]] = {}
    for shard, bucket in enumerate(slices):
        for row in bucket:
            by_date.setdefault(row[1], set()).add(shard)
    assert all(len(shards) == 1 for shards in by_date.values())


def test_slice_rows_unknown_attribute():
    shard_map = ShardMap(2, {"accident": ("nope",)})
    with pytest.raises(UnknownAttributeError):
        shard_map.slice_rows(("accident_id", "date"), "accident", [("a1", "d1")])


# -- routing analysis ----------------------------------------------------------------


def _tfacc_template() -> ParameterizedQuery:
    """The serving-benchmark form: vehicles in a force's accidents on a date.

    Its plan touches ``accident`` at three fetch steps — the parameter-keyed
    anchor, an ``N = 1`` self-lookup, and a second anchored step — so it
    exercises every branch of the per-step safety proof.
    """
    query = (
        SPCQueryBuilder(tfacc_schema(), name="force_vehicles_on_date")
        .add_atom("accident", alias="a")
        .add_atom("vehicle", alias="v")
        .where_eq("a.accident_id", "v.accident_id")
        .select("a.accident_id")
        .select("v.vehicle_id")
        .select("v.vehicle_type")
        .build()
    )
    return ParameterizedQuery(
        query,
        {"date": query.ref("a", "date"), "force": query.ref("a", "police_force")},
    )


def _q1_template() -> ParameterizedQuery:
    q1 = query_q1()
    return ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )


def test_resolve_route_keyed_on_the_anchor_step():
    plan = prepare_plan(_tfacc_template(), tfacc_access_schema())
    route = resolve_route(plan, ShardMap(4, {"accident": ("date",)}))
    assert route.kind == "keyed"
    assert route.relation == "accident"
    assert route.key_attrs == ("date",)
    assert route.key_specs == (("param", "date"),)


def test_resolve_route_spread_when_nothing_is_partitioned():
    plan = prepare_plan(_tfacc_template(), tfacc_access_schema())
    route = resolve_route(plan, ShardMap(4))
    assert route.kind == "spread"


def test_resolve_route_rejects_unroutable_partitioning():
    """Partitioning ``vehicle`` on vehicle_id is unsafe: the plan probes
    vehicle by *accident_id*, whose matches may live on any shard."""
    plan = prepare_plan(_tfacc_template(), tfacc_access_schema())
    with pytest.raises(ShardRoutingError) as caught:
        resolve_route(plan, ShardMap(4, {"vehicle": ("vehicle_id",)}))
    assert "vehicle" in str(caught.value)


def test_resolve_route_rejects_two_partitioned_relations():
    plan = prepare_plan(_tfacc_template(), tfacc_access_schema())
    with pytest.raises(ShardRoutingError) as caught:
        resolve_route(
            plan,
            ShardMap(4, {"accident": ("date",), "vehicle": ("vehicle_id",)}),
        )
    assert "one shard" in str(caught.value)


def test_route_shard_for_agrees_with_placement():
    shard_map = ShardMap(4, {"accident": ("date",)})
    plan = prepare_plan(_tfacc_template(), tfacc_access_schema())
    route = resolve_route(plan, shard_map)
    slot_values = plan.bind_values({"date": "2019-03-07", "force": "force_01"})
    assert route.shard_for(shard_map, slot_values) == shard_map.shard_of_key(
        "accident", ("2019-03-07",)
    )


def test_spread_route_is_deterministic_per_binding():
    shard_map = ShardMap(4)
    route = Route(kind="spread")
    a = route.shard_for(shard_map, {"date": "d1", "force": "f1"})
    assert a == route.shard_for(shard_map, {"force": "f1", "date": "d1"})
    assert a in range(4)


def test_for_template_partitions_on_the_first_constraint_key():
    shard_map = ShardMap.for_template(
        _q1_template(), social_access_schema(), num_shards=4
    )
    assert shard_map.partitioned == {"in_album": ("album_id",)}
    plan = prepare_plan(_q1_template(), social_access_schema())
    assert resolve_route(plan, shard_map).kind == "keyed"
    tfacc_map = ShardMap.for_template(
        _tfacc_template(), tfacc_access_schema(), num_shards=4
    )
    plan = prepare_plan(_tfacc_template(), tfacc_access_schema())
    assert resolve_route(plan, tfacc_map).kind == "keyed"
