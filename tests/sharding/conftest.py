"""Shared fixtures for the sharded-serving tests.

Process spawning is the expensive part of these tests, so the standing
services are module-scoped: one 2-shard keyed service and one spread service
serve many tests.  The data is the generated social-network instance (small,
deterministic), partitioned on ``in_album.album_id`` — the routing key of the
Q1 form template.
"""

from __future__ import annotations

import pytest

from repro.execution import BoundedEngine
from repro.sharding import ShardMap, ShardedQueryService
from repro.spc import ParameterizedQuery
from repro.workloads import generate_social_database, query_q1, social_access_schema


@pytest.fixture(scope="module")
def social_db():
    return generate_social_database(scale=0.5, seed=3)


@pytest.fixture(scope="module")
def access():
    return social_access_schema()


@pytest.fixture(scope="module")
def form_template():
    q1 = query_q1()
    return ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )


@pytest.fixture(scope="module")
def bindings():
    return [{"album": f"a{i % 40}", "user": f"u{i % 100}"} for i in range(120)]


@pytest.fixture(scope="module")
def serial_reference(social_db, access, form_template, bindings):
    """The single-process ground truth every sharded run must reproduce."""
    engine = BoundedEngine(access)
    prepared = engine.prepare_query(form_template)
    prepared.warm(social_db)
    return [prepared.execute(social_db, **binding) for binding in bindings]


@pytest.fixture(scope="module")
def keyed_map():
    return ShardMap(2, {"in_album": ("album_id",)})


@pytest.fixture(scope="module")
def keyed_service(social_db, access, keyed_map):
    with ShardedQueryService(social_db, access, shard_map=keyed_map) as service:
        yield service


@pytest.fixture(scope="module")
def spread_service(social_db, access):
    with ShardedQueryService(social_db, access, shards=2) as service:
        yield service
