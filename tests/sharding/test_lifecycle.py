"""Lifecycle: clean shutdown with no orphaned processes, crash containment."""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.errors import ServiceClosedError, ShardCrashedError
from repro.sharding import ShardedQueryService
from repro.storage.latency import LatencyInjectingBackend


def _shard_children():
    return [
        p for p in multiprocessing.active_children() if p.name.startswith("repro-shard-")
    ]


def test_close_leaves_no_orphaned_processes(social_db, access, keyed_map, form_template):
    service = ShardedQueryService(social_db, access, shard_map=keyed_map)
    procs = [handle.process for handle in service._handles]
    assert all(p.is_alive() for p in procs)
    assert len(_shard_children()) >= 2
    service.run(form_template, album="a1", user="u1")
    service.close()
    assert all(not p.is_alive() for p in procs)
    assert _shard_children() == []
    # Shutdown was graceful (exit 0), not a terminate() kill.
    assert all(p.exitcode == 0 for p in procs)


def test_close_is_idempotent_and_context_manager_closes(social_db, access, keyed_map):
    with ShardedQueryService(social_db, access, shard_map=keyed_map) as service:
        pass
    assert _shard_children() == []
    service.close()  # second close is a no-op
    service.close(drain=False)


def test_submit_after_close_raises(social_db, access, keyed_map, form_template):
    service = ShardedQueryService(social_db, access, shard_map=keyed_map)
    service.close()
    with pytest.raises(ServiceClosedError):
        service.submit(form_template, album="a1", user="u1")


def test_close_drain_serves_inflight(social_db, access, keyed_map, form_template):
    def slow(backend):
        return LatencyInjectingBackend(backend, access_latency=0.05, seed=4)

    service = ShardedQueryService(social_db, access, shard_map=keyed_map, wrap=slow)
    futures = [
        service.submit(form_template, album=f"a{i}", user=f"u{i}") for i in range(4)
    ]
    service.close(drain=True)
    for future in futures:
        assert future.result(timeout=0).tuples is not None
    assert _shard_children() == []


def test_close_no_drain_fails_unserved_requests(social_db, access, keyed_map, form_template):
    def slow(backend):
        return LatencyInjectingBackend(backend, access_latency=0.2, seed=5)

    service = ShardedQueryService(social_db, access, shard_map=keyed_map, wrap=slow)
    futures = [
        service.submit(form_template, album=f"a{i}", user=f"u{i}") for i in range(8)
    ]
    service.close(drain=False)
    outcomes = [future.exception(timeout=5.0) for future in futures]
    # Every future settled; the abandoned ones carry the typed closed error.
    assert any(isinstance(error, ServiceClosedError) for error in outcomes)
    assert _shard_children() == []


def test_killed_shard_fails_its_requests_typed(social_db, access, keyed_map, form_template):
    """SIGKILL one shard mid-request: its in-flight requests fail with the
    typed ShardCrashedError naming the shard; the service survives to close."""

    def slow(backend):
        return LatencyInjectingBackend(backend, access_latency=0.3, seed=6)

    service = ShardedQueryService(social_db, access, shard_map=keyed_map, wrap=slow)
    try:
        futures = [
            service.submit(form_template, album=f"a{i}", user=f"u{i}")
            for i in range(8)
        ]
        time.sleep(0.2)  # let dispatch reach the shards
        with service._lock:
            victim = max(service._handles, key=lambda h: h.pending)
        os.kill(victim.process.pid, signal.SIGKILL)
        errors = []
        for future in futures:
            error = future.exception(timeout=30.0)
            if error is not None:
                errors.append(error)
        assert errors, "killing a busy shard must fail at least one request"
        assert all(isinstance(error, ShardCrashedError) for error in errors)
        assert all(error.shard == victim.index for error in errors)
        # New submissions routed to the dead shard are refused, typed.
        with pytest.raises(ShardCrashedError):
            for i in range(40):
                future = service.submit(form_template, album=f"a{i}", user="u1")
                future.result(timeout=30.0)
    finally:
        service.close()
    assert _shard_children() == []
