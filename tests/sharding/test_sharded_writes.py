"""Live writes across the shard fleet: routing, parity, crash behavior.

These tests build their own short-lived services instead of the module-scoped
fixtures in ``conftest.py`` — writes mutate shard state, and the standing
services are shared by the read-path tests.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import ShardCrashedError
from repro.execution import BoundedEngine
from repro.relational import Database
from repro.service import QueryService
from repro.sharding import ShardMap, ShardedQueryService
from repro.spc import ParameterizedQuery
from repro.storage import as_backend
from repro.workloads import generate_social_database, query_q1, social_access_schema

RESOLVE_TIMEOUT = 30.0


def _social_db() -> Database:
    return generate_social_database(scale=0.3, seed=7)


def _template() -> ParameterizedQuery:
    q1 = query_q1()
    return ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )


def _keyed_map() -> ShardMap:
    return ShardMap(2, {"in_album": ("album_id",)})


def _wait_until_dead(service: ShardedQueryService, index: int) -> None:
    handle = service._handles[index]
    deadline = time.monotonic() + 10.0
    while not handle.dead:
        if time.monotonic() > deadline:
            pytest.fail(f"router never noticed shard {index} dying")
        time.sleep(0.02)


def test_partitioned_writes_route_to_the_owning_shard():
    """Rows of a partitioned relation land only on their key's shard."""
    shard_map = _keyed_map()
    albums = [f"a{i}" for i in range(10)]
    expected = [0, 0]
    rows = []
    for i, album in enumerate(albums):
        rows.append((f"wp{i}", album))
        expected[shard_map.shard_of_key("in_album", (album,))] += 1
    assert all(expected), "test data must exercise both shards"

    with ShardedQueryService(_social_db(), social_access_schema(), shard_map=shard_map) as service:
        before = service.shard_stats()
        counts = service.apply_writes(inserts={"in_album": rows})
        assert counts == {"in_album": (len(rows), 0)}
        after = service.shard_stats()
        for shard in range(2):
            routed = after[shard]["rows_written"] - before[shard]["rows_written"]
            assert routed == expected[shard]
            assert after[shard]["write_batches"] - before[shard]["write_batches"] == 1
        stats = service.stats(shard_timeout=None)
        assert stats["write_batches"] == 1
        assert stats["rows_written"] == len(rows)


def test_replicated_writes_fan_out_to_every_shard():
    """A non-partitioned relation's rows reach every shard, counted once."""
    edges = [("uw0", "uw1"), ("uw1", "uw2"), ("uw2", "uw0")]
    with ShardedQueryService(
        _social_db(), social_access_schema(), shard_map=_keyed_map()
    ) as service:
        counts = service.apply_writes(inserts={"friends": edges})
        # Logical count, not #shards x rows: replicas apply identical slices.
        assert counts == {"friends": (len(edges), 0)}
        per_shard = service.shard_stats()
        for shard in range(2):
            assert per_shard[shard]["rows_written"] == len(edges)
            assert per_shard[shard]["write_batches"] == 1


def test_cross_shard_writes_match_the_unsharded_service():
    """The same write + query schedule on sharded vs thread-tier services
    yields identical answers — including a write that changes an answer."""
    base = _social_db()
    access = social_access_schema()
    template = _template()

    # Craft an observable write from the data: take an existing tag, make its
    # tagger a friend of the taggee (the Q1 join condition), then remove the
    # tag again.  The answer for (album-of-photo, taggee) must change twice.
    photo, tagger, taggee = base.relation("tagging").tuples()[0]
    album = dict(base.relation("in_album").tuples())[photo]
    binding = {"album": album, "user": taggee}
    probes = [binding] + [{"album": f"a{i % 12}", "user": f"u{i % 40}"} for i in range(10)]

    reference = QueryService(as_backend(_social_db()), access, workers=1)
    sharded = ShardedQueryService(base, access, shard_map=_keyed_map())
    try:

        def answers(service):
            return [
                service.submit(template, **probe).result(timeout=RESOLVE_TIMEOUT).as_set
                for probe in probes
            ]

        def both_apply(**batch):
            sharded_counts = sharded.apply_writes(**batch)
            assert sharded_counts == reference.apply_writes(**batch)

        assert answers(sharded) == answers(reference)

        both_apply(inserts={"friends": [(taggee, tagger)]})
        after_insert = answers(sharded)
        assert after_insert == answers(reference)
        assert any(photo in row for row in after_insert[0]), (
            "the crafted friendship must surface the tag in the answer"
        )

        both_apply(deletes={"tagging": [(photo, tagger, taggee)]})
        after_delete = answers(sharded)
        assert after_delete == answers(reference)
        assert not any(photo in row for row in after_delete[0])
    finally:
        sharded.close()
        reference.close()


def test_shard_crash_mid_write_leaves_survivors_consistent():
    """A write spanning a dead shard fails typed; live shards still commit
    their slices and keep serving."""
    shard_map = _keyed_map()
    albums = [f"a{i}" for i in range(10)]
    by_shard: dict[int, str] = {}
    for album in albums:
        by_shard.setdefault(shard_map.shard_of_key("in_album", (album,)), album)
    assert set(by_shard) == {0, 1}

    with ShardedQueryService(
        _social_db(), social_access_schema(), shard_map=shard_map
    ) as service:
        victim = 1
        survivor = 0
        os.kill(service._handles[victim].process.pid, signal.SIGKILL)
        _wait_until_dead(service, victim)

        rows = [(f"wp{shard}", album) for shard, album in sorted(by_shard.items())]
        with pytest.raises(ShardCrashedError) as excinfo:
            service.apply_writes(inserts={"in_album": rows})
        assert excinfo.value.shard == victim

        per_shard = service.shard_stats()
        assert per_shard[victim] == {"alive": False}
        # The survivor committed its slice and still answers queries.
        assert per_shard[survivor]["alive"]
        assert per_shard[survivor]["rows_written"] == 1
        future = service.submit(_template(), album=by_shard[survivor], user="u0")
        future.result(timeout=RESOLVE_TIMEOUT)


def test_write_then_read_orders_on_the_same_shard():
    """A query submitted after a write observes it (FIFO outbox ordering)."""
    base = _social_db()
    access = social_access_schema()
    template = _template()
    photo, tagger, taggee = base.relation("tagging").tuples()[1]
    album = dict(base.relation("in_album").tuples())[photo]

    with ShardedQueryService(base, access, shard_map=_keyed_map()) as service:
        service.apply_writes(inserts={"friends": [(taggee, tagger)]})
        result = service.submit(template, album=album, user=taggee).result(
            timeout=RESOLVE_TIMEOUT
        )
        assert any(photo in row for row in result.as_set)

        # And the answer agrees with a naive single-process oracle.
        oracle = generate_social_database(scale=0.3, seed=7)
        oracle.apply_writes(inserts={"friends": [(taggee, tagger)]})
        naive = BoundedEngine(access).execute_naive(
            template.bind(album=album, user=taggee), oracle
        )
        assert result.as_set == naive.as_set
