"""Shared fixtures for the serving-layer tests.

The social-network scenario keeps these tests fast: a generated instance a
few thousand tuples large, the Q1 form template, and a pool of distinct
bindings.  Latency-injecting backends (simulated storage round-trips) make
timing-sensitive behaviors — queue buildup, deadline expiry — deterministic
enough to assert without real I/O.
"""

from __future__ import annotations

import pytest

from repro.execution import BoundedEngine
from repro.spc import ParameterizedQuery
from repro.workloads import generate_social_database, query_q1, social_access_schema


@pytest.fixture(scope="module")
def social_db():
    return generate_social_database(scale=0.5, seed=3)


@pytest.fixture(scope="module")
def access():
    return social_access_schema()


@pytest.fixture(scope="module")
def form_template():
    q1 = query_q1()
    return ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )


@pytest.fixture(scope="module")
def bindings():
    return [{"album": f"a{i % 40}", "user": f"u{i % 100}"} for i in range(120)]


@pytest.fixture(scope="module")
def serial_reference(social_db, access, form_template, bindings):
    """The single-threaded ground truth every service run must reproduce."""
    engine = BoundedEngine(access)
    prepared = engine.prepare_query(form_template)
    prepared.warm(social_db)
    return [prepared.execute(social_db, **binding) for binding in bindings]
