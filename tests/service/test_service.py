"""QueryService behavior: parity, batching, admission control, lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.errors import QueryError, ServiceClosedError, ServiceError, ServiceOverloadedError
from repro.execution import BoundedEngine
from repro.service import QueryService
from repro.storage import LatencyInjectingBackend, SQLiteBackend
from repro.workloads import get_workload


class TestResultParity:
    def test_concurrent_results_match_serial(
        self, social_db, access, form_template, bindings, serial_reference
    ):
        """4 workers, a full binding sweep: rows and |D_Q| equal serial, in order."""
        with QueryService(social_db, access, workers=4) as service:
            results = service.run_many(form_template, bindings)
        assert [r.tuples for r in results] == [r.tuples for r in serial_reference]
        assert [r.stats.tuples_accessed for r in results] == [
            r.stats.tuples_accessed for r in serial_reference
        ]

    def test_sqlite_backend_results_match_serial(
        self, social_db, access, form_template, bindings, serial_reference
    ):
        """The same sweep over a SQLite store with per-worker connections."""
        backend = SQLiteBackend.from_database(social_db)
        try:
            with QueryService(backend, access, workers=4) as service:
                results = service.run_many(form_template, bindings)
        finally:
            backend.close()
        assert [r.tuples for r in results] == [r.tuples for r in serial_reference]
        assert [r.stats.tuples_accessed for r in results] == [
            r.stats.tuples_accessed for r in serial_reference
        ]

    def test_submissions_from_many_client_threads(
        self, social_db, access, form_template, bindings, serial_reference
    ):
        """Submission itself is thread-safe: 6 client threads sharing a service."""
        results: dict[int, list] = {}
        with QueryService(social_db, access, workers=3) as service:

            def client(client_id: int) -> None:
                futures = [
                    service.submit(form_template, **binding) for binding in bindings[:40]
                ]
                results[client_id] = [future.result() for future in futures]

            threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        expected = [r.tuples for r in serial_reference[:40]]
        for client_id in range(6):
            assert [r.tuples for r in results[client_id]] == expected

    def test_workload_source_carries_its_access_schema(self, form_template):
        """A Workload source needs no explicit access schema."""
        workload = get_workload("social")
        with QueryService(workload, workers=2) as service:
            result = service.run(form_template, album="a0", user="u0")
        assert result.stats.strategy == "bounded"


class TestMicroBatching:
    def test_same_template_requests_are_batched(
        self, social_db, access, form_template, bindings
    ):
        """A single worker draining a same-template backlog batches it."""
        with QueryService(
            social_db, access, workers=1, max_batch=16
        ) as service:
            futures = service.submit_many(form_template, bindings)
            answers = [future.result() for future in futures]
            stats = service.stats()
        assert len(answers) == len(bindings)
        # A backlog of identical-template requests must not be served one
        # queue-take each: batching collapses takes (first take may be small).
        assert stats["batches"] < stats["completed"]
        assert stats["largest_batch"] > 1

    def test_batch_members_report_individually(
        self, social_db, access, form_template, bindings, serial_reference
    ):
        """Batched execution cannot merge answers across requests."""
        with QueryService(social_db, access, workers=1, max_batch=32) as service:
            results = service.run_many(form_template, bindings[:50])
        assert [r.tuples for r in results] == [
            r.tuples for r in serial_reference[:50]
        ]


class TestAdmissionControl:
    def test_queue_overflow_rejects_typed(self, social_db, access, form_template):
        """Beyond max_pending, submissions shed load with ServiceOverloadedError."""
        slow = LatencyInjectingBackend(social_db, access_latency=0.05)
        service = QueryService(
            slow, access, workers=1, max_pending=2, max_batch=1
        )
        admitted = []
        try:
            with pytest.raises(ServiceOverloadedError):
                for _ in range(20):
                    admitted.append(service.submit(form_template, album="a0", user="u0"))
            # Rejection happens once the single worker is busy and the queue
            # holds max_pending requests: within a handful of submissions.
            assert 1 <= len(admitted) <= 6
            # Shed requests are NOT counted as submitted: "submitted" means
            # admitted, so the stats invariant holds under load shedding.
            assert service.stats()["submitted"] == len(admitted)
        finally:
            service.close()
        assert all(future.result().stats.strategy == "bounded" for future in admitted)
        stats = service.stats()
        assert stats["submitted"] == stats["completed"] == len(admitted)

    def test_unknown_parameter_rejected_at_submission(
        self, social_db, access, form_template
    ):
        with QueryService(social_db, access, workers=1) as service:
            with pytest.raises(QueryError):
                service.submit(form_template, album="a0", user="u0", extra=1)
            with pytest.raises(QueryError):
                service.submit(form_template, album="a0")

    def test_invalid_worker_count_rejected(self, social_db, access):
        with pytest.raises(ServiceError):
            QueryService(social_db, access, workers=0)

    def test_missing_access_schema_rejected(self, social_db):
        with pytest.raises(ServiceError):
            QueryService(social_db)


class TestLifecycle:
    def test_submit_after_close_raises(self, social_db, access, form_template):
        service = QueryService(social_db, access, workers=1)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(form_template, album="a0", user="u0")

    def test_close_drains_pending_by_default(self, social_db, access, form_template):
        slow = LatencyInjectingBackend(social_db, access_latency=0.01)
        service = QueryService(slow, access, workers=1, max_batch=1)
        futures = [
            service.submit(form_template, album=f"a{i}", user="u0") for i in range(5)
        ]
        service.close()  # graceful: every admitted request still gets served
        assert all(future.result().stats.strategy == "bounded" for future in futures)

    def test_close_without_drain_fails_pending_typed(
        self, social_db, access, form_template
    ):
        slow = LatencyInjectingBackend(social_db, access_latency=0.05)
        service = QueryService(slow, access, workers=1, max_batch=1)
        futures = [
            service.submit(form_template, album=f"a{i}", user="u0") for i in range(8)
        ]
        service.close(drain=False)
        outcomes = [future.exception() for future in futures]
        # The in-flight batch finishes; everything still queued fails typed.
        assert any(isinstance(error, ServiceClosedError) for error in outcomes)
        assert all(
            error is None or isinstance(error, ServiceClosedError)
            for error in outcomes
        )


class TestMonitoring:
    def test_stats_and_describe(self, social_db, access, form_template, bindings):
        engine = BoundedEngine(access)
        with QueryService(
            social_db, access, workers=2, engine=engine
        ) as service:
            service.run_many(form_template, bindings[:30])
            stats = service.stats()
            description = service.describe()
        assert stats["submitted"] == 30
        assert stats["completed"] == 30
        assert stats["timeouts"] == 0 and stats["failures"] == 0
        assert stats["execution"]["requests"] == 30
        assert stats["execution"]["tuples_accessed"] > 0
        assert "QueryService: 2 workers" in description
        assert "plan-cache" in description
        # The engine saw one template compilation and many cache hits.
        prepared_stats = engine.cache_info()["prepared"]
        assert prepared_stats.misses >= 1
        assert prepared_stats.hits >= 1
