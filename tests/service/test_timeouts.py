"""Cancellation paths: deadlines and bounded-access budgets, always typed.

The contract under test: a request whose deadline expires — while queued or
mid-execution — resolves to :class:`~repro.errors.ServiceTimeout`, never to a
half-built row set; and a request with an access budget either completes
within it or fails with :class:`~repro.errors.BudgetExceededError` *without
the access counter ever exceeding the budget* (enforcement is conservative,
using the plan's per-step bounds).
"""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError, DeadlineExceededError, ServiceTimeout
from repro.execution import BoundedEngine
from repro.execution.metrics import ExecutionLimits
from repro.service import QueryService
from repro.storage import LatencyInjectingBackend


class TestDeadlines:
    def test_expiry_while_queued_is_typed(self, social_db, access, form_template):
        """Requests stuck behind a slow head-of-line expire with ServiceTimeout."""
        slow = LatencyInjectingBackend(social_db, access_latency=0.05)
        with QueryService(slow, access, workers=1, max_batch=1) as service:
            head = service.submit(form_template, album="a0", user="u0")
            # ~0.15s of head-of-line latency vs a 10ms deadline: these expire
            # in the queue, before any execution starts.
            stuck = [
                service.submit(form_template, album=f"a{i}", user="u0", deadline=0.01)
                for i in range(1, 4)
            ]
            assert head.result().stats.strategy == "bounded"
            for future in stuck:
                with pytest.raises(ServiceTimeout, match="expired while queued"):
                    future.result()
            assert service.stats()["timeouts"] == len(stuck)

    def test_expiry_mid_execution_is_typed(self, social_db, access, form_template):
        """A deadline shorter than one storage round-trip aborts between steps."""
        slow = LatencyInjectingBackend(social_db, access_latency=0.04)
        with QueryService(slow, access, workers=1) as service:
            future = service.submit(
                form_template, album="a0", user="u0", deadline=0.02
            )
            with pytest.raises(ServiceTimeout):
                future.result()

    def test_executor_level_deadline_is_deadline_exceeded(
        self, social_db, access, form_template
    ):
        """Below the service, the executor raises DeadlineExceededError itself."""
        slow = LatencyInjectingBackend(social_db, access_latency=0.04)
        engine = BoundedEngine(access)
        prepared = engine.prepare_query(form_template)
        prepared.warm(slow)
        with pytest.raises(DeadlineExceededError):
            prepared.serve(
                slow,
                {"album": "a0", "user": "u0"},
                ExecutionLimits(deadline=0.0),  # monotonic epoch: long past
            )

    def test_no_deadline_never_times_out(self, social_db, access, form_template):
        with QueryService(social_db, access, workers=2) as service:
            results = service.run_many(
                form_template, [{"album": f"a{i}", "user": "u0"} for i in range(20)]
            )
        assert len(results) == 20

    def test_explicit_none_overrides_service_default_deadline(
        self, social_db, access, form_template
    ):
        """deadline=None disables a service-wide default; omitted applies it."""
        slow = LatencyInjectingBackend(social_db, access_latency=0.03)
        with QueryService(
            slow, access, workers=1, default_deadline=0.0
        ) as service:
            # Omitted deadline -> the (impossible) default applies.
            defaulted = service.submit(form_template, album="a0", user="u0")
            with pytest.raises(ServiceTimeout):
                defaulted.result()
            # Explicit None -> no deadline at all, despite the default.
            unlimited = service.submit(
                form_template, album="a0", user="u0", deadline=None
            )
            assert unlimited.result().stats.strategy == "bounded"


class TestBudgets:
    def test_budget_below_first_step_rejects_with_zero_accesses(
        self, social_db, access, form_template
    ):
        """A budget no step fits in aborts before any data is touched."""
        engine = BoundedEngine(access)
        prepared = engine.prepare_query(form_template)
        prepared.warm(social_db)
        backend = social_db.backend
        before = backend.access_snapshot()
        with pytest.raises(BudgetExceededError):
            prepared.serve(
                social_db, {"album": "a0", "user": "u0"}, ExecutionLimits(budget=1)
            )
        assert backend.accesses_since(before).total == 0

    def test_counter_never_exceeds_budget(self, social_db, access, form_template):
        """For every budget, accessed <= budget — completed or aborted alike."""
        engine = BoundedEngine(access)
        prepared = engine.prepare_query(form_template)
        prepared.warm(social_db)
        backend = social_db.backend
        step_bounds = [step.bound for step in prepared.prepared.plan.steps]
        probes = [1, step_bounds[0], step_bounds[0] + 1, sum(step_bounds) // 2]
        for budget in probes:
            before = backend.access_snapshot()
            try:
                prepared.serve(
                    social_db, {"album": "a0", "user": "u0"},
                    ExecutionLimits(budget=budget),
                )
            except BudgetExceededError:
                pass
            assert backend.accesses_since(before).total <= budget

    def test_budget_at_plan_bound_always_completes(
        self, social_db, access, form_template
    ):
        """The plan's own bound is always a sufficient budget (the paper's promise)."""
        engine = BoundedEngine(access)
        prepared = engine.prepare_query(form_template)
        prepared.warm(social_db)
        result = prepared.serve(
            social_db,
            {"album": "a0", "user": "u0"},
            ExecutionLimits(budget=prepared.total_bound),
        )
        assert result.stats.tuples_accessed <= prepared.total_bound

    def test_service_budget_failure_is_typed_budget_error(
        self, social_db, access, form_template
    ):
        with QueryService(social_db, access, workers=1) as service:
            future = service.submit(form_template, album="a0", user="u0", budget=1)
            with pytest.raises(BudgetExceededError):
                future.result()
            ok = service.submit(
                form_template, album="a0", user="u0", budget=10**9
            )
            assert ok.result().stats.strategy == "bounded"
            assert service.stats()["failures"] == 1
