"""Admission accounting under a submit/close race (regression).

The races analyzer (CONC001) found that ``QueryService._admit`` checked
``self._closed`` and counted ``submitted`` *outside* ``_stats_lock``: a
``close()`` racing a burst of submissions could admit a request after the
closed flag was set, and a worker could serve a request (bumping
``completed``) before the submitting thread counted it — monitors sampling
``stats()`` mid-race would observe ``completed > submitted``, and the
post-drain books would not balance.  These tests hammer exactly that
interleaving and assert the admission invariant

    submitted == completed + timeouts + failures + degraded + pending

holds at every sample and exactly balances once the service is closed.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.service import QueryService

CLIENTS = 6
PER_CLIENT = 30


def _served(stats) -> int:
    return (
        stats["completed"] + stats["timeouts"] + stats["failures"] + stats["degraded"]
    )


@pytest.mark.parametrize("close_delay_requests", [0, 25, 60])
def test_submit_close_race_keeps_books_balanced(
    social_db, access, form_template, bindings, close_delay_requests
):
    service = QueryService(social_db, access, workers=3, max_pending=64)
    admitted_per_client = [0] * CLIENTS
    rejected_closed = threading.Event()
    start = threading.Barrier(CLIENTS + 1)
    served_gate = threading.Semaphore(0)
    monitor_violations: list[dict] = []
    stop_monitor = threading.Event()

    def monitor() -> None:
        # The fixed race let completed overtake submitted; sample relentlessly.
        while not stop_monitor.is_set():
            stats = service.stats()
            if stats["submitted"] < _served(stats):
                monitor_violations.append(stats)

    def client(client_id: int) -> None:
        start.wait()
        futures = []
        for binding in bindings[:PER_CLIENT]:
            try:
                futures.append(service.submit(form_template, **binding))
            except ServiceClosedError:
                rejected_closed.set()
            except ServiceOverloadedError:
                pass  # rejected-and-rolled-back: must not count as submitted
            served_gate.release()
        admitted_per_client[client_id] = len(futures)
        for future in futures:
            try:
                future.result()
            except ServiceClosedError:
                pass  # closed without drain fails pending futures, still counted

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
    ]
    watcher = threading.Thread(target=monitor)
    for thread in threads:
        thread.start()
    watcher.start()
    start.wait()
    # Close mid-burst: after roughly `close_delay_requests` submissions have
    # gone through (0 = close immediately, 60 = close mid-stream).
    for _ in range(close_delay_requests):
        served_gate.acquire()
    service.close(drain=True)
    for thread in threads:
        thread.join()
    stop_monitor.set()
    watcher.join()

    assert monitor_violations == []
    stats = service.stats()
    assert stats["closed"] is True
    assert stats["pending"] == 0
    # Every future handed out is accounted, every rejection rolled back.
    assert stats["submitted"] == sum(admitted_per_client)
    assert stats["submitted"] == _served(stats)


def test_submissions_after_close_are_rejected_not_counted(
    social_db, access, form_template
):
    service = QueryService(social_db, access, workers=2)
    service.submit(form_template, album="a0", user="u0").result()
    service.close()
    before = service.stats()["submitted"]
    for _ in range(5):
        with pytest.raises(ServiceClosedError):
            service.submit(form_template, album="a0", user="u0")
    assert service.stats()["submitted"] == before
