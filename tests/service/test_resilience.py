"""Fault-tolerant serving: retries, breakers, degradation, interruptible close.

The integration tests drive a real :class:`QueryService` over a
:class:`FaultInjectingBackend` with seeded schedules (``workers=1`` keeps the
fault stream's request interleaving — hence the whole test — deterministic)
and pin the PR's acceptance criteria:

* under transient faults, retried requests return **byte-identical** answers
  to the fault-free serial reference;
* **charge-safe retries**: measured ``tuples_accessed`` never exceeds the
  plan's a-priori bound, even when faults fire *after* the counter was
  charged (``post_charge_fraction=1``);
* the negative control (retries disabled) demonstrably fails requests;
* breakers trip after consecutive failures and recover after the reset
  timeout; degradation serves stale or partial answers only when opted in;
* ``close(drain=False)`` never hangs — even with a worker mid-retry-backoff.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    ApiMisuseError,
    ServiceClosedError,
    ServiceTimeout,
    StorageUnavailableError,
    TransientStorageError,
)
from repro.service import (
    BreakerConfig,
    CircuitBreaker,
    DegradationPolicy,
    DegradedResult,
    QueryService,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.storage import FaultInjectingBackend, FaultPlan, SeededJitter

#: Fast backoff for tests: retries resolve in milliseconds.
FAST_RETRY = RetryPolicy(
    max_attempts=6, base_delay=0.001, max_delay=0.005, rng=SeededJitter(0).uniform
)


# -- RetryPolicy -------------------------------------------------------------------


def test_retry_delays_are_capped_jittered_and_replayable():
    policy = RetryPolicy(
        max_attempts=8, base_delay=0.1, max_delay=1.0, rng=SeededJitter(5).uniform
    )
    replay = RetryPolicy(
        max_attempts=8, base_delay=0.1, max_delay=1.0, rng=SeededJitter(5).uniform
    )
    delay = None
    delays = []
    for _ in range(30):
        delay = policy.next_delay(delay)
        delays.append(delay)
    assert all(0.1 <= d <= 1.0 for d in delays)
    assert max(delays) > 0.2  # the window actually grows
    other = None
    assert delays == [other := replay.next_delay(other) for _ in range(30)]


def test_retry_attempts_are_cost_aware():
    policy = RetryPolicy(max_attempts=10, access_budget=5000)
    assert policy.attempts_for(plan_bound=1000) == 5
    assert policy.attempts_for(plan_bound=100) == 10  # capped by max_attempts
    assert policy.attempts_for(plan_bound=100000) == 1  # always one real try
    assert policy.attempts_for(plan_bound=None) == 10
    assert RetryPolicy(max_attempts=3).attempts_for(plan_bound=10**9) == 3


def test_retry_policy_validates_configuration():
    with pytest.raises(ApiMisuseError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ApiMisuseError):
        RetryPolicy(base_delay=1.0, max_delay=0.5)
    with pytest.raises(ApiMisuseError):
        RetryPolicy(multiplier=0.5)


# -- CircuitBreaker ----------------------------------------------------------------


def test_breaker_state_machine_with_scripted_clock():
    ticks = iter([0.0, 0.1, 0.2, 0.9, 1.3, 1.4, 1.5, 2.6])
    breaker = CircuitBreaker(
        "friends",
        BreakerConfig(failure_threshold=2, reset_timeout=1.0),
        clock=lambda: next(ticks),
    )
    assert breaker.state == "closed"
    assert breaker.record_failure() is False  # t=0.0
    assert breaker.record_failure() is True  # t=0.1: trips
    assert breaker.state == "open"
    assert breaker.allow() is False  # t=0.2: still open
    assert breaker.allow() is False  # t=0.9: still open
    assert breaker.allow() is True  # t=1.3: half-open probe admitted
    assert breaker.state == "half_open"
    assert breaker.allow() is False  # t=1.4: probe outstanding
    assert breaker.record_failure() is True  # t=1.5: probe failed, re-open
    assert breaker.state == "open"
    assert breaker.allow() is True  # t=2.6: next probe window
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.trips == 2


def test_breaker_success_resets_the_failure_streak():
    clock = iter(float(i) * 0.001 for i in range(100))
    breaker = CircuitBreaker(
        "friends", BreakerConfig(failure_threshold=3), clock=lambda: next(clock)
    )
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # streak broken
    assert breaker.record_failure() is False
    assert breaker.state == "closed"


def test_breaker_half_open_readmits_a_lost_probe():
    ticks = iter([0.0, 5.0, 5.1, 12.0])
    breaker = CircuitBreaker(
        "friends",
        BreakerConfig(failure_threshold=1, reset_timeout=2.0),
        clock=lambda: next(ticks),
    )
    breaker.record_failure()  # t=0.0: open
    assert breaker.allow() is True  # t=5.0: half-open probe
    assert breaker.allow() is False  # t=5.1: outstanding
    assert breaker.allow() is True  # t=12.0: probe presumed lost, re-admit
    assert breaker.state == "half_open"


# -- integration: charge-safe retries ----------------------------------------------


@pytest.fixture
def chaotic_backend(social_db):
    """The social database behind a 10% transient-fault schedule.

    ``post_charge_fraction=1.0`` makes every fault the nasty kind: the inner
    access has already charged the counter when the error fires, so any
    retry loop that fails to roll back double-charges visibly.
    """
    plan = FaultPlan(seed=13, transient_fault_rate=0.10, post_charge_fraction=1.0)
    return FaultInjectingBackend(social_db, plan), plan


def test_retried_requests_match_the_serial_reference_and_stay_charged_within_bounds(
    chaotic_backend, access, form_template, bindings, serial_reference
):
    backend, plan = chaotic_backend
    with QueryService(
        backend,
        access,
        workers=1,
        resilience=ResiliencePolicy(retry=FAST_RETRY),
    ) as service:
        results = service.run_many(form_template, bindings)
        stats = service.stats()
    assert plan.stats()["transient"] > 0, "the schedule must actually inject faults"
    assert stats["execution"]["retries"] > 0, "faults must actually be retried"
    assert stats["completed"] == len(bindings)
    assert stats["failures"] == 0
    for result, reference in zip(results, serial_reference):
        # Byte-identical answers whenever retries ultimately succeed.
        assert result.rows.rows == reference.rows.rows
        # Charge-safe: the measured |D_Q| is one clean execution's, within
        # the plan's a-priori bound — retries never double-charge.
        assert result.stats.tuples_accessed == reference.stats.tuples_accessed
        assert result.stats.tuples_accessed <= result.stats.plan_bound


def test_negative_control_without_retries_fails_requests(
    chaotic_backend, access, form_template, bindings
):
    backend, _ = chaotic_backend
    with QueryService(backend, access, workers=1) as service:
        futures = service.submit_many(form_template, bindings)
        errors = [future.exception() for future in futures]
        stats = service.stats()
    failed = [error for error in errors if error is not None]
    assert failed, "without retries the fault schedule must fail requests"
    assert all(isinstance(error, TransientStorageError) for error in failed)
    assert stats["failures"] == len(failed)
    assert stats["execution"]["retries"] == 0


# -- integration: breakers ---------------------------------------------------------


def test_breaker_trips_on_outage_and_recovers_after_reset(
    social_db, access, form_template, bindings
):
    plan = FaultPlan(seed=0)
    backend = FaultInjectingBackend(social_db, plan)
    resilience = ResiliencePolicy(
        breaker=BreakerConfig(failure_threshold=2, reset_timeout=0.05)
    )
    with QueryService(backend, access, workers=1, resilience=resilience) as service:
        assert not service.run(form_template, **bindings[0]).degraded

        plan.fail_relation("friends")
        outage_errors = [
            service.submit(form_template, **binding).exception()
            for binding in bindings[:3]
        ]
        assert all(isinstance(error, StorageUnavailableError) for error in outage_errors)
        # The third request was refused by the breaker, not by storage.
        assert "circuit breaker" in str(outage_errors[2])
        assert service.stats()["breakers"]["friends"] == "open"
        assert service.stats()["execution"]["breaker_trips"] >= 1

        plan.restore_relation("friends")
        time.sleep(0.06)  # past the reset timeout: next request is the probe
        result = service.run(form_template, **bindings[0])
        assert not result.degraded
        assert service.stats()["breakers"]["friends"] == "closed"
        assert "breaker trips" in service.describe()


# -- integration: graceful degradation ---------------------------------------------


def test_degradation_serves_stale_then_partial_answers(
    social_db, access, form_template, bindings
):
    plan = FaultPlan(seed=0)
    backend = FaultInjectingBackend(social_db, plan)
    resilience = ResiliencePolicy(degradation=DegradationPolicy())
    with QueryService(backend, access, workers=1, resilience=resilience) as service:
        fresh = service.run(form_template, **bindings[0])
        assert not fresh.degraded

        plan.fail_relation("friends")
        stale = service.run(form_template, **bindings[0])
        assert isinstance(stale, DegradedResult)
        assert stale.degraded and stale.kind == "stale"
        assert stale.tuples == fresh.tuples  # the cached prior answer
        assert stale.staleness is not None and stale.staleness >= 0.0
        assert isinstance(stale.cause, StorageUnavailableError)

        partial = service.run(form_template, **bindings[1])  # never served before
        assert isinstance(partial, DegradedResult)
        assert partial.kind == "partial" and partial.is_empty
        assert partial.failed_relation == "friends"
        assert "friends" in partial.describe()

        stats = service.stats()
        assert stats["degraded"] == 2
        assert stats["execution"]["degraded"] == 2
        assert stats["failures"] == 0


def test_degradation_respects_the_stale_ttl(social_db, access, form_template, bindings):
    plan = FaultPlan(seed=0)
    backend = FaultInjectingBackend(social_db, plan)
    resilience = ResiliencePolicy(
        degradation=DegradationPolicy(stale_ttl=0.0, partial=False)
    )
    with QueryService(backend, access, workers=1, resilience=resilience) as service:
        service.run(form_template, **bindings[0])
        plan.fail_relation("friends")
        # TTL 0 rejects the cached answer and partial is off: the typed
        # error surfaces instead of a degraded answer.
        with pytest.raises(StorageUnavailableError):
            service.run(form_template, **bindings[0])


# -- satellite: richer timeout context ---------------------------------------------


def test_service_timeout_names_plan_key_elapsed_and_limit(
    social_db, access, form_template, bindings
):
    with QueryService(social_db, access, workers=1) as service:
        error = service.submit(form_template, deadline=0.0, **bindings[0]).exception()
    assert isinstance(error, ServiceTimeout)
    assert error.plan_key == form_template.plan_key()
    assert error.elapsed is not None
    assert error.limit == pytest.approx(0.0, abs=1e-3)
    assert "elapsed" in str(error) and "plan key" in str(error)


# -- satellite: close(drain=False) never hangs -------------------------------------


def test_close_without_drain_interrupts_retry_backoff(
    social_db, access, form_template, bindings
):
    """A worker sleeping out a long backoff must not delay close(drain=False)."""
    plan = FaultPlan(seed=1, transient_fault_rate=1.0, post_charge_fraction=0.0)
    backend = FaultInjectingBackend(social_db, plan)
    slow_retry = RetryPolicy(
        max_attempts=5, base_delay=30.0, max_delay=30.0, rng=SeededJitter(0).uniform
    )
    service = QueryService(
        backend, access, workers=1, resilience=ResiliencePolicy(retry=slow_retry)
    )
    futures = service.submit_many(form_template, bindings[:3])
    deadline = time.monotonic() + 5.0
    while service.stats()["execution"]["retries"] == 0:
        assert time.monotonic() < deadline, "worker never reached its backoff"
        time.sleep(0.01)
    started = time.monotonic()
    service.close(drain=False)
    assert time.monotonic() - started < 5.0, "close waited out the retry backoff"
    errors = [future.exception(timeout=1.0) for future in futures]
    assert all(isinstance(error, ServiceClosedError) for error in errors)
    assert "retry backoff" in str(errors[0])
    service.close()  # idempotent
