"""Hypothesis: serial-vs-concurrent result parity on random TFACC / MOT batches.

The service's whole reason to exist is throughput — it must never trade
correctness for it.  These properties generate random request batches
(random bindings, random batch sizes) for form templates of the TFACC and
MOT workloads, serve each batch through a 4-worker :class:`QueryService`,
and demand the per-request answers and access counts be exactly those of a
serial prepared-execution loop over the same batch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.execution import BoundedEngine
from repro.service import QueryService
from repro.spc import ParameterizedQuery
from repro.spc.builder import SPCQueryBuilder
from repro.workloads import get_workload
from repro.workloads.mot import mot_access_schema, mot_schema
from repro.workloads.tfacc import tfacc_access_schema, tfacc_schema

_DB_CACHE: dict[str, object] = {}


def _database(name: str):
    if name not in _DB_CACHE:
        _DB_CACHE[name] = get_workload(name).database(scale=0.02, seed=7)
    return _DB_CACHE[name]


def _tfacc_template() -> ParameterizedQuery:
    """Vehicles in a force's accidents on a date (the serving-benchmark form)."""
    query = (
        SPCQueryBuilder(tfacc_schema(), name="force_vehicles_on_date")
        .add_atom("accident", alias="a")
        .add_atom("vehicle", alias="v")
        .where_eq("a.accident_id", "v.accident_id")
        .select("a.accident_id")
        .select("v.vehicle_id")
        .select("v.vehicle_type")
        .build()
    )
    return ParameterizedQuery(
        query,
        {"date": query.ref("a", "date"), "force": query.ref("a", "police_force")},
    )


def _mot_template() -> ParameterizedQuery:
    """A vehicle's test history with its garage's details."""
    query = (
        SPCQueryBuilder(mot_schema(), name="vehicle_history")
        .add_atom("mot_test", alias="m")
        .add_atom("garage", alias="g")
        .where_eq("m.garage_id", "g.garage_id")
        .select("m.test_id")
        .select("m.test_result")
        .select("g.garage_name")
        .build()
    )
    return ParameterizedQuery(query, {"vehicle": query.ref("m", "vehicle_id")})


_TFACC_BINDINGS = st.fixed_dictionaries(
    {
        # A mix of present and absent keys: parity must hold for misses too.
        "date": st.sampled_from(
            ["2004-01-03", "2004-02-11", "2004-03-07", "2004-06-19", "2030-01-01"]
        ),
        "force": st.sampled_from([f"force_{i:02d}" for i in (1, 2, 3, 7, 11, 49)]),
    }
)

_MOT_BINDINGS = st.fixed_dictionaries(
    {"vehicle": st.sampled_from([f"v{i:07d}" for i in range(0, 60, 3)] + ["missing"])}
)

_CASES = {
    "tfacc": (_tfacc_template, tfacc_access_schema, _TFACC_BINDINGS),
    "mot": (_mot_template, mot_access_schema, _MOT_BINDINGS),
}


@pytest.mark.parametrize("workload", sorted(_CASES))
@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_concurrent_batches_match_serial(workload, data):
    template_factory, access_factory, binding_strategy = _CASES[workload]
    template = template_factory()
    access = access_factory()
    database = _database(workload)
    batch = data.draw(st.lists(binding_strategy, min_size=1, max_size=25))

    engine = BoundedEngine(access)
    prepared = engine.prepare_query(template)
    prepared.warm(database)
    serial = [prepared.execute(database, **binding) for binding in batch]

    with QueryService(database, access, workers=4) as service:
        concurrent = service.run_many(template, batch)

    assert [r.tuples for r in concurrent] == [r.tuples for r in serial]
    assert [r.stats.tuples_accessed for r in concurrent] == [
        r.stats.tuples_accessed for r in serial
    ]
    assert all(
        r.stats.tuples_accessed <= prepared.total_bound for r in concurrent
    )
    # The statically *proven* Σ Mᵢ certificate is just as binding as the
    # plan's stated bound: no execution may touch more than what was proven.
    certificate = prepared.certificate
    assert certificate is not None
    assert certificate.total_bound == prepared.total_bound
    assert all(
        r.stats.tuples_accessed <= certificate.total_bound for r in concurrent
    )
