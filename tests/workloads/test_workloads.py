"""Tests for the workload generators: schemas, constraints, data and queries."""

import pytest

from repro.access import satisfies
from repro.core import bcheck, ebcheck
from repro.errors import WorkloadError
from repro.workloads import (
    PAPER_WORKLOADS,
    generate_social_database,
    get_workload,
    paper_workloads,
    query_q0,
    social_access_schema,
    tfacc_schema,
    workload_names,
)


class TestRegistry:
    def test_registered_names(self):
        assert set(workload_names()) == {"social", "tfacc", "mot", "tpch"}
        assert PAPER_WORKLOADS == ("tfacc", "mot", "tpch")
        assert len(paper_workloads()) == 3

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("social").database(scale=0)


class TestSocialWorkload:
    def test_schema_matches_example1(self):
        workload = get_workload("social")
        assert set(workload.schema.relation_names) == {"in_album", "friends", "tagging"}
        assert workload.access_schema.cardinality == 3

    def test_generated_data_satisfies_a0(self):
        database = generate_social_database(scale=0.5, seed=9)
        assert satisfies(database, social_access_schema())

    def test_generation_is_deterministic(self):
        first = generate_social_database(scale=0.2, seed=4)
        second = generate_social_database(scale=0.2, seed=4)
        assert first.relation("friends").tuples() == second.relation("friends").tuples()
        different = generate_social_database(scale=0.2, seed=5)
        assert first.relation("friends").tuples() != different.relation("friends").tuples()

    def test_queries_are_valid_and_bounded(self):
        workload = get_workload("social")
        for query in workload.queries(seed=1):
            assert bcheck(query, workload.access_schema).bounded


class TestTfaccWorkload:
    def test_paper_scale_structure(self):
        schema = tfacc_schema()
        assert len(schema) == 19, "the paper's TFACC has 19 tables"
        assert schema.total_attributes == 113, "the paper's TFACC has 113 attributes"
        workload = get_workload("tfacc")
        assert workload.access_schema.cardinality == 84, "the paper extracted 84 constraints"

    def test_generated_data_satisfies_constraints(self):
        workload = get_workload("tfacc")
        database = workload.database(scale=0.15, seed=2)
        assert satisfies(database, workload.access_schema)
        assert database.total_tuples > 1000

    def test_access_schema_validates_against_schema(self):
        workload = get_workload("tfacc")
        workload.access_schema.validate_against(workload.schema)

    def test_quoted_constraints_present(self):
        workload = get_workload("tfacc")
        rendered = {str(c) for c in workload.access_schema}
        assert any("date" in c and "610" in c for c in rendered)
        assert any("accident_id" in c and "192" in c for c in rendered)


@pytest.mark.parametrize("name,expected_relations", [("mot", 2), ("tpch", 8)])
class TestOtherPaperWorkloads:
    def test_structure_and_satisfaction(self, name, expected_relations):
        workload = get_workload(name)
        assert len(workload.schema) == expected_relations
        workload.access_schema.validate_against(workload.schema)
        database = workload.database(scale=0.15, seed=2)
        assert satisfies(database, workload.access_schema)

    def test_query_sets_have_fifteen_queries(self, name, expected_relations):
        workload = get_workload(name)
        queries = workload.queries(seed=2)
        assert len(queries) == 15
        for query in queries:
            assert query.is_satisfiable
            assert bcheck(query, workload.access_schema).bounded


class TestMotSpecifics:
    def test_wide_table_has_36_attributes(self):
        workload = get_workload("mot")
        assert workload.schema.relation("mot_test").arity == 36


class TestTpchSpecifics:
    def test_scale_factor_grows_data(self):
        workload = get_workload("tpch")
        small = workload.database(scale=0.1, seed=1)
        large = workload.database(scale=0.3, seed=1)
        assert large.total_tuples > small.total_tuples * 2

    def test_majority_of_queries_effectively_bounded(self):
        workload = get_workload("tpch")
        queries = workload.queries(seed=2)
        effective = sum(
            1 for q in queries if ebcheck(q, workload.access_schema).effectively_bounded
        )
        assert effective / len(queries) >= 0.6


class TestCrossWorkloadCoverage:
    def test_overall_effectively_bounded_fraction_matches_paper_ballpark(self):
        """Exp-1: the paper reports 35/45 (>77%) effectively bounded queries."""
        total = effective = 0
        for workload in paper_workloads():
            queries = workload.queries(seed=2)
            total += len(queries)
            effective += sum(
                1 for q in queries if ebcheck(q, workload.access_schema).effectively_bounded
            )
        assert total == 45
        assert effective / total >= 0.6
