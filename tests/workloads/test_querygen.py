"""Tests for the SPC query generator (the #-sel / #-prod knobs of Section 6)."""

import pytest

from repro.core import bcheck
from repro.workloads import generate_query, generate_query_set
from repro.workloads.tfacc import tfacc_access_schema, tfacc_querygen_spec
from repro.workloads.tpch import tpch_access_schema, tpch_querygen_spec


@pytest.fixture(scope="module")
def tfacc_spec():
    return tfacc_querygen_spec()


@pytest.fixture(scope="module")
def tpch_spec():
    return tpch_querygen_spec()


class TestGenerateQuery:
    def test_requested_products(self, tfacc_spec):
        for num_products in range(0, 5):
            generated = generate_query(tfacc_spec, num_products=num_products, num_selections=6, seed=11)
            assert generated.query.num_products == num_products

    def test_selections_reach_target_when_pool_allows(self, tfacc_spec):
        generated = generate_query(tfacc_spec, num_products=2, num_selections=7, seed=3)
        assert generated.query.num_selections >= 2  # at least the join conjuncts
        assert generated.query.num_selections <= 7 + 2

    def test_queries_are_satisfiable(self, tfacc_spec):
        for seed in range(20):
            generated = generate_query(tfacc_spec, num_products=2, num_selections=6, seed=seed)
            assert generated.query.is_satisfiable

    def test_queries_have_output(self, tpch_spec):
        for seed in range(10):
            generated = generate_query(tpch_spec, num_products=1, num_selections=5, seed=seed)
            assert generated.query.output

    def test_determinism(self, tfacc_spec):
        first = generate_query(tfacc_spec, num_products=2, num_selections=6, seed=42)
        second = generate_query(tfacc_spec, num_products=2, num_selections=6, seed=42)
        assert first.query == second.query

    def test_join_conjuncts_connect_occurrences(self, tpch_spec):
        generated = generate_query(tpch_spec, num_products=3, num_selections=8, seed=5)
        query = generated.query
        # Every occurrence beyond the first should be reachable through at
        # least one cross-occurrence equality (no accidental pure products
        # when the join graph is dense enough).
        from repro.spc import AttrEq

        touched = {0}
        for condition in query.conditions:
            if isinstance(condition, AttrEq) and condition.left.atom != condition.right.atom:
                touched.add(condition.left.atom)
                touched.add(condition.right.atom)
        assert touched == set(range(query.num_atoms))


class TestGenerateQuerySet:
    def test_count_and_knob_ranges(self, tfacc_spec):
        generated = generate_query_set(tfacc_spec, count=15, seed=7)
        assert len(generated) == 15
        assert {g.query.num_products for g in generated} <= set(range(0, 5))
        assert all(g.query.num_selections >= 1 for g in generated)

    def test_most_generated_queries_are_bounded(self, tfacc_spec):
        access_schema = tfacc_access_schema()
        generated = generate_query_set(tfacc_spec, count=15, seed=7)
        bounded = sum(1 for g in generated if bcheck(g.query, access_schema).bounded)
        assert bounded / len(generated) >= 0.6

    def test_bounded_fraction_controls_anchoring(self, tpch_spec):
        from repro.core import ebcheck

        access_schema = tpch_access_schema()
        anchored = generate_query_set(tpch_spec, count=12, seed=3, bounded_fraction=1.0)
        unanchored = generate_query_set(tpch_spec, count=12, seed=3, bounded_fraction=0.0)
        eb_anchored = sum(
            1 for g in anchored if ebcheck(g.query, access_schema).effectively_bounded
        )
        eb_unanchored = sum(
            1 for g in unanchored if ebcheck(g.query, access_schema).effectively_bounded
        )
        assert eb_anchored >= eb_unanchored

    def test_names_are_unique(self, tfacc_spec):
        generated = generate_query_set(tfacc_spec, count=15, seed=1)
        names = [g.query.name for g in generated]
        assert len(set(names)) == len(names)
