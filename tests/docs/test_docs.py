"""Docs health: intra-repo links resolve, and public-API doctests pass.

This is the local half of the CI ``docs`` job (the job also runs
``pytest --doctest-modules`` directly): it fails the tier-1 suite when a
Markdown document links to a file that does not exist, or when a runnable
example in a public docstring of the execution / service / storage layers
rots.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Markdown documents whose intra-repo links must resolve.
DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

#: Markdown inline links: [text](target).  Good enough for these docs — no
#: reference-style links are used.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Packages whose docstring examples are executable documentation.
DOCTEST_PACKAGES = ["repro.execution", "repro.service", "repro.sharding", "repro.storage", "repro.util"]


def _intra_repo_links(document: Path) -> list[str]:
    links = []
    for target in _LINK.findall(document.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])
    return links


@pytest.mark.parametrize("document", DOCUMENTS, ids=lambda p: p.name)
def test_intra_repo_links_resolve(document):
    assert document.exists(), f"missing document {document}"
    broken = [
        target
        for target in _intra_repo_links(document)
        if not (document.parent / target).exists()
    ]
    assert not broken, (
        f"{document.relative_to(REPO_ROOT)} links to missing files: {broken}"
    )


def test_docs_mention_every_benchmark_file():
    """docs/paper_map.md must index every benchmark suite (acceptance gate)."""
    paper_map = (REPO_ROOT / "docs" / "paper_map.md").read_text()
    benchmark_files = sorted(
        path.name for path in (REPO_ROOT / "benchmarks").glob("test_*.py")
    )
    assert benchmark_files, "no benchmark files found?"
    missing = [name for name in benchmark_files if name not in paper_map]
    assert not missing, f"docs/paper_map.md does not cover: {missing}"


def test_architecture_guard_map_is_in_sync():
    """The guard-map table in docs/architecture.md regenerates identically.

    The table between the ``guard-map`` markers is machine-generated from
    the concurrency analyzer; if a lock, annotation or shared attribute
    changes in ``src/repro`` without the doc being regenerated, this drift
    gate fails with the fresh table in the diff.
    """
    from repro.analysis.concurrency import guard_table_markdown

    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    begin, end = "<!-- guard-map:begin -->", "<!-- guard-map:end -->"
    assert begin in text and end in text
    documented = text.split(begin, 1)[1].split(end, 1)[0].strip()
    generated = guard_table_markdown(REPO_ROOT).strip()
    assert documented == generated, (
        "docs/architecture.md guard map is stale — regenerate the section "
        "between the guard-map markers with "
        "repro.analysis.concurrency.guard_table_markdown(REPO_ROOT)"
    )


def _iter_module_names(package_name: str) -> list[str]:
    package = importlib.import_module(package_name)
    names = [package_name]
    for info in pkgutil.iter_modules(package.__path__, prefix=f"{package_name}."):
        names.append(info.name)
    return names


@pytest.mark.parametrize(
    "module_name",
    [name for pkg in DOCTEST_PACKAGES for name in _iter_module_names(pkg)],
)
def test_public_docstring_examples_run(module_name):
    """Every ``>>>`` example in these layers executes and matches its output."""
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
