"""Unit tests for QPlan and bounded plans (Section 5.1)."""

import pytest

from repro.access import AccessConstraint, AccessSchema
from repro.errors import NotEffectivelyBoundedError
from repro.planning import ColumnSource, ConstSource, plan_access_bound, qplan
from repro.spc import SPCQueryBuilder


class TestQPlanOnExample1:
    def test_plan_reproduces_7000_tuple_bound(self, q0, access_schema):
        """Example 1/10: Q0's plan visits at most 7000 tuples."""
        plan = qplan(q0, access_schema)
        assert plan.total_bound == 7000

    def test_plan_has_one_covering_step_per_occurrence(self, q0, access_schema):
        plan = qplan(q0, access_schema)
        assert set(plan.covering) == {0, 1, 2}
        for atom_index, step_index in plan.covering.items():
            step = plan.steps[step_index]
            assert step.atom == atom_index
            assert q0.atom_parameters(atom_index) <= set(step.outputs)

    def test_step_bounds_match_example(self, q0, access_schema):
        plan = qplan(q0, access_schema)
        bounds = sorted(step.bound for step in plan.steps)
        # T1: 1000 photos, T2: 5000 friends, T3: 1000 tagging probes.
        assert bounds == [1000, 1000, 5000]

    def test_tagging_step_depends_on_album_step(self, q0, access_schema):
        plan = qplan(q0, access_schema)
        tagging_step = plan.covering_step(2)
        sources = tagging_step.key_sources
        assert isinstance(sources["taggee_id"], ConstSource)
        photo_source = sources["photo_id"]
        assert isinstance(photo_source, ColumnSource)
        assert plan.steps[photo_source.step].atom == 0  # values come from in_album

    def test_constant_steps_have_constant_sources(self, q0, access_schema):
        plan = qplan(q0, access_schema)
        album_step = plan.covering_step(0)
        assert isinstance(album_step.key_sources["album_id"], ConstSource)
        assert album_step.key_sources["album_id"].value == "a0"

    def test_plan_describe_mentions_steps_and_bound(self, q0, access_schema):
        plan = qplan(q0, access_schema)
        text = plan.describe()
        assert "7000" in text and "T0" in text and "covering step" in text

    def test_atom_proofs_cover_parameters(self, q0, access_schema):
        plan = qplan(q0, access_schema)
        for atom_index, proof in plan.proofs.items():
            assert proof.covered == q0.atom_parameters(atom_index)
            assert proof.bound >= 1 and proof.steps


class TestQPlanGuards:
    def test_not_effectively_bounded_raises(self, q1, access_schema):
        with pytest.raises(NotEffectivelyBoundedError):
            qplan(q1, access_schema)

    def test_plan_access_bound_helper(self, q0, access_schema):
        assert plan_access_bound(q0, access_schema) == 7000

    def test_check_false_skips_ebcheck(self, q0, access_schema):
        assert qplan(q0, access_schema, check=False).total_bound == 7000

    def test_pruning_drops_unused_steps(self, schema, access_schema):
        # A single-occurrence lookup needs exactly one fetch step even though
        # other constraints could be actualized.
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .where_const("f.user_id", "u0")
            .select("f.friend_id")
            .build()
        )
        plan = qplan(query, access_schema)
        assert plan.num_steps == 1
        assert plan.total_bound == 5000

    def test_plan_bound_grows_along_join_chains(self, schema):
        access = AccessSchema(
            [
                AccessConstraint("friends", ["user_id"], ["friend_id"], 10),
                AccessConstraint("tagging", ["taggee_id"], ["photo_id", "tagger_id"], 5),
            ]
        )
        # friends(u0) -> friend_id = taggee_id -> tagging rows: 10 * 5 probes.
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .add_atom("tagging", alias="t")
            .where_const("f.user_id", "u0")
            .where_eq("f.friend_id", "t.taggee_id")
            .select("t.photo_id")
            .build()
        )
        plan = qplan(query, access)
        assert plan.total_bound == 10 + 10 * 5

    def test_parameterless_occurrence_uses_empty_key_constraint(self, schema, access_schema):
        with_domain = access_schema.merged(
            AccessSchema([AccessConstraint("in_album", [], ["album_id"], 100)])
        )
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .add_atom("in_album", alias="ia")
            .where_const("f.user_id", "u0")
            .select("f.friend_id")
            .build()
        )
        plan = qplan(query, with_domain)
        witness_step = plan.covering_step(1)
        assert witness_step.constraint.x == ()
        assert witness_step.key_sources == {}


class TestPlanQualityVsAccessSchema:
    def test_more_constraints_never_worsen_the_bound(self, q0, access_schema):
        richer = access_schema.merged(
            AccessSchema(
                [AccessConstraint("in_album", ["album_id", "photo_id"], ["photo_id"], 1)]
            )
        )
        assert qplan(q0, richer).total_bound <= qplan(q0, access_schema).total_bound

    def test_tighter_constraint_gives_tighter_plan(self, q0, schema):
        tighter = AccessSchema(
            [
                AccessConstraint("in_album", ["album_id"], ["photo_id"], 100),
                AccessConstraint("friends", ["user_id"], ["friend_id"], 500),
                AccessConstraint("tagging", ["photo_id", "taggee_id"], ["tagger_id"], 1),
            ]
        )
        assert qplan(q0, tighter).total_bound == 100 + 500 + 100
