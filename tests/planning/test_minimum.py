"""Unit tests for minimum D_Q / M-boundedness (Section 5.2, Theorem 8)."""

from repro.access import AccessConstraint, AccessSchema
from repro.planning import (
    is_effectively_m_bounded,
    is_m_bounded,
    minimum_plan_bound,
)
from repro.spc import SPCQueryBuilder


class TestMinimumPlanBound:
    def test_default_equals_plan_bound(self, q0, access_schema):
        assert minimum_plan_bound(q0, access_schema) == 7000

    def test_exhaustive_never_worse_than_default(self, q0, access_schema):
        exhaustive = minimum_plan_bound(q0, access_schema, exhaustive=True)
        assert exhaustive <= 7000

    def test_exhaustive_picks_cheaper_covering(self, schema):
        # Two ways to cover the friends occurrence: a loose constraint (bound
        # 5000) and a tight one (bound 50); the exhaustive search must pick 50.
        access = AccessSchema(
            [
                AccessConstraint("friends", ["user_id"], ["friend_id"], 5000),
                AccessConstraint("friends", ["user_id"], ["friend_id", "user_id"], 50),
            ]
        )
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .where_const("f.user_id", "u0")
            .select("f.friend_id")
            .build()
        )
        assert minimum_plan_bound(query, access, exhaustive=True) == 50


class TestEffectiveMBounded:
    def test_threshold_behaviour(self, q0, access_schema):
        assert is_effectively_m_bounded(q0, access_schema, 7000)
        assert is_effectively_m_bounded(q0, access_schema, 10_000)
        assert not is_effectively_m_bounded(q0, access_schema, 6_999)
        assert not is_effectively_m_bounded(q0, access_schema, -1)

    def test_not_effectively_bounded_query_is_never_effectively_m_bounded(
        self, q1, access_schema
    ):
        assert not is_effectively_m_bounded(q1, access_schema, 10**9)


class TestMBounded:
    def test_effectively_bounded_queries_are_m_bounded(self, q0, access_schema):
        assert is_m_bounded(q0, access_schema, 7000)
        assert not is_m_bounded(q0, access_schema, 0)

    def test_unbounded_query_is_not_m_bounded(self, q1, access_schema):
        assert not is_m_bounded(q1, access_schema, 10**9)

    def test_bounded_but_not_effective_uses_closure_estimate(self, schema, q2_boolean):
        # Boolean query, no access schema: bounded with a witness of size |Q|,
        # and the closure estimate (one witness per occurrence) fits in 3.
        empty = AccessSchema()
        assert is_m_bounded(q2_boolean, empty, 3)
        assert not is_m_bounded(q2_boolean, empty, 0)

    def test_negative_m_rejected(self, q0, access_schema):
        assert not is_m_bounded(q0, access_schema, -5)
