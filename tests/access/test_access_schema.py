"""Unit tests for access constraints, access schemas and D |= A checking."""

import pytest

from repro.access import (
    AccessConstraint,
    AccessSchema,
    Violation,
    access_schema_from_specs,
    build_access_indexes,
    check_constraint,
    domain_bound,
    find_violations,
    functional_dependency,
    key_constraint,
    require_satisfies,
    satisfies,
    tighten_bounds,
)
from repro.errors import AccessSchemaError, ConstraintViolationError
from repro.relational import Database, RelationSchema, schema_from_mapping
from repro.spc.normalize import universal_schema
from repro.workloads import generate_social_database


class TestAccessConstraint:
    def test_construction_normalizes_attribute_order(self):
        constraint = AccessConstraint("r", ["b", "a"], ["d", "c"], 5)
        assert constraint.x == ("a", "b") and constraint.y == ("c", "d")
        assert constraint.covered == {"a", "b", "c", "d"}
        assert constraint.size == 4

    def test_fetch_attributes_order(self):
        constraint = AccessConstraint("r", ["a"], ["a", "b"], 3)
        assert constraint.fetch_attributes == ("a", "b")

    def test_invalid_bound_and_empty_y(self):
        with pytest.raises(AccessSchemaError):
            AccessConstraint("r", ["a"], ["b"], 0)
        with pytest.raises(AccessSchemaError):
            AccessConstraint("r", ["a"], [], 1)

    def test_fd_and_key_and_domain_helpers(self):
        schema = RelationSchema("r", ["a", "b", "c"])
        fd = functional_dependency("r", ["a"], ["b"])
        assert fd.is_functional_dependency and fd.bound == 1
        key = key_constraint(schema, ["a"])
        assert set(key.y) == {"b", "c"} and key.bound == 1
        bound = domain_bound("r", "c", 12)
        assert bound.is_domain_bound and bound.bound == 12

    def test_validate_against_schema(self):
        schema = RelationSchema("r", ["a", "b"])
        AccessConstraint("r", ["a"], ["b"], 2).validate_against(schema)
        with pytest.raises(AccessSchemaError):
            AccessConstraint("r", ["a"], ["z"], 2).validate_against(schema)
        with pytest.raises(AccessSchemaError):
            AccessConstraint("s", ["a"], ["b"], 2).validate_against(schema)

    def test_str_rendering(self):
        constraint = AccessConstraint("r", ["a"], ["b"], 7)
        assert "r" in str(constraint) and "7" in str(constraint)


class TestAccessSchema:
    def test_sizes_and_lookup(self, access_schema):
        assert access_schema.cardinality == 3
        assert access_schema.size == sum(c.size for c in access_schema)
        assert len(access_schema.for_relation("friends")) == 1
        assert access_schema.for_relation("unknown") == ()

    def test_duplicates_ignored(self):
        constraint = AccessConstraint("r", ["a"], ["b"], 2)
        schema = AccessSchema([constraint, constraint])
        assert schema.cardinality == 1

    def test_restricted_and_without_and_merged(self, access_schema):
        assert access_schema.restricted(2).cardinality == 2
        with pytest.raises(AccessSchemaError):
            access_schema.restricted(-1)
        removed = access_schema.without(access_schema.constraints()[0])
        assert removed.cardinality == 2
        merged = removed.merged(access_schema)
        assert merged.cardinality == 3

    def test_validate_against_database_schema(self, schema, access_schema):
        access_schema.validate_against(schema)
        bad = AccessSchema([AccessConstraint("nonexistent", ["a"], ["b"], 1)])
        with pytest.raises(AccessSchemaError):
            bad.validate_against(schema)

    def test_to_universal_translation(self, schema, access_schema):
        universal = universal_schema(schema)
        translated = access_schema.to_universal(universal)
        assert translated.cardinality == access_schema.cardinality
        for constraint in translated:
            assert constraint.relation == universal.relation.name
            assert "__rel" in constraint.x

    def test_describe_lists_constraints(self, access_schema):
        assert "in_album" in access_schema.describe()


class TestSatisfaction:
    def test_satisfying_instance(self, small_social_db, access_schema):
        assert satisfies(small_social_db, access_schema)
        assert find_violations(small_social_db, access_schema) == []
        require_satisfies(small_social_db, access_schema)

    def test_violation_detection(self, schema):
        database = Database(schema)
        database.extend("tagging", [("p1", "u1", "u0"), ("p1", "u2", "u0")])
        constraint = AccessConstraint("tagging", ["photo_id", "taggee_id"], ["tagger_id"], 1)
        violations = check_constraint(database, constraint)
        assert len(violations) == 1
        assert isinstance(violations[0], Violation)
        assert violations[0].distinct_y == 2
        with pytest.raises(ConstraintViolationError):
            require_satisfies(database, AccessSchema([constraint]))

    def test_constraints_on_missing_relations_skipped(self, small_social_db):
        schema = AccessSchema([AccessConstraint("not_there", ["a"], ["b"], 1)])
        assert satisfies(small_social_db, schema)

    def test_tighten_bounds(self, small_social_db, access_schema):
        tightened = tighten_bounds(small_social_db, access_schema)
        by_relation = {c.relation: c for c in tightened}
        assert by_relation["in_album"].bound == 2  # album a0 holds two photos
        assert by_relation["friends"].bound == 2
        assert by_relation["tagging"].bound == 1

    def test_generated_workload_satisfies_schema(self, access_schema):
        database = generate_social_database(scale=0.5, seed=3)
        assert satisfies(database, access_schema)


class TestConstraintIndexes:
    def test_fetch_through_constraint_index(self, small_social_db, access_schema):
        indexes = build_access_indexes(small_social_db, access_schema)
        constraint = access_schema.for_relation("in_album")[0]
        index = indexes.for_constraint(constraint)
        rows = index.fetch(("a0",))
        assert set(rows) == {("a0", "p1"), ("a0", "p2")}
        assert index.contains(("a1",)) and not index.contains(("a9",))

    def test_fetch_counts_tuples(self, small_social_db, access_schema):
        indexes = build_access_indexes(small_social_db, access_schema)
        constraint = access_schema.for_relation("friends")[0]
        before = small_social_db.access_snapshot()
        indexes.for_constraint(constraint).fetch(("u0",))
        assert small_social_db.accesses_since(before).index_probed == 2

    def test_bound_enforcement(self, schema):
        database = Database(schema)
        database.extend("friends", [("u0", f"u{i}") for i in range(1, 6)])
        tight = AccessSchema([AccessConstraint("friends", ["user_id"], ["friend_id"], 2)])
        indexes = build_access_indexes(database, tight, enforce_bounds=True)
        with pytest.raises(ConstraintViolationError):
            indexes.for_constraint(tight.constraints()[0]).fetch(("u0",))
        relaxed = build_access_indexes(database, tight, enforce_bounds=False)
        assert len(relaxed.for_constraint(tight.constraints()[0]).fetch(("u0",))) == 5

    def test_missing_index_raises(self, access_schema):
        from repro.access.indexes import AccessIndexes

        empty = AccessIndexes()
        with pytest.raises(ConstraintViolationError):
            empty.for_constraint(access_schema.constraints()[0])

    def test_fetch_many_deduplicates(self, small_social_db, access_schema):
        indexes = build_access_indexes(small_social_db, access_schema)
        constraint = access_schema.for_relation("in_album")[0]
        rows = indexes.for_constraint(constraint).fetch_many([("a0",), ("a0",), ("a1",)])
        assert len(rows) == 3
