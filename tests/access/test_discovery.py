"""Unit tests for access-constraint discovery from data."""

from repro.access import (
    discover_access_schema,
    discover_domain_bounds,
    discover_functional_dependencies,
    profile_constraints,
    satisfies,
)
from repro.relational import Database, relation_from_rows, schema_from_mapping


def _employees():
    return relation_from_rows(
        "employees",
        ["emp_id", "dept", "dept_head", "grade"],
        [
            (1, "sales", "ana", 3),
            (2, "sales", "ana", 4),
            (3, "eng", "bo", 3),
            (4, "eng", "bo", 5),
            (5, "hr", "cy", 3),
        ],
    )


class TestDomainBounds:
    def test_small_domains_reported(self):
        constraints = discover_domain_bounds(_employees(), max_domain=3)
        by_attr = {c.y[0]: c for c in constraints}
        assert by_attr["dept"].bound == 3
        assert by_attr["grade"].bound == 3
        assert "emp_id" not in by_attr  # 5 distinct values > max_domain

    def test_slack_inflates_bounds(self):
        constraints = discover_domain_bounds(_employees(), max_domain=3, slack=0.5)
        by_attr = {c.y[0]: c for c in constraints}
        assert by_attr["dept"].bound >= 5

    def test_discovered_bounds_hold(self):
        relation = _employees()
        database = Database.from_relations([relation])
        from repro.access import AccessSchema

        schema = AccessSchema(discover_domain_bounds(relation, max_domain=10))
        assert satisfies(database, schema)


class TestFunctionalDependencies:
    def test_single_attribute_fds(self):
        fds = discover_functional_dependencies(_employees(), max_lhs=1)
        as_pairs = {(fd.x, fd.y) for fd in fds}
        assert (("dept",), ("dept_head",)) in as_pairs
        assert (("emp_id",), ("dept",)) in as_pairs
        # grade does not determine dept (grade 3 maps to sales, eng and hr).
        assert (("grade",), ("dept",)) not in as_pairs

    def test_minimality_prunes_supersets(self):
        fds = discover_functional_dependencies(_employees(), max_lhs=2)
        lhs_for_head = [fd.x for fd in fds if fd.y == ("dept_head",)]
        # dept -> dept_head is minimal, so no 2-attribute LHS containing dept
        # should also be reported for dept_head.
        assert ("dept",) in lhs_for_head
        assert all(len(lhs) == 1 or "dept" not in lhs for lhs in lhs_for_head)

    def test_all_discovered_fds_hold(self):
        relation = _employees()
        for fd in discover_functional_dependencies(relation, max_lhs=2):
            assert relation.group_cardinality(fd.x, fd.y) <= 1


class TestProfiling:
    def test_profile_constraints_bounds(self):
        constraints = profile_constraints(
            _employees(), [(["dept"], ["emp_id"]), (["dept_head"], ["dept"])]
        )
        by_x = {c.x: c.bound for c in constraints}
        assert by_x[("dept",)] == 2  # at most 2 employees per department here
        assert by_x[("dept_head",)] == 1

    def test_discover_access_schema_end_to_end(self):
        database = Database.from_relations([_employees()])
        discovered = discover_access_schema(
            database,
            max_domain=4,
            max_fd_lhs=1,
            candidates={"employees": [(["dept"], ["emp_id"])]},
        )
        assert discovered.cardinality > 3
        assert satisfies(database, discovered)

    def test_discovered_schema_enables_bounded_answering(self):
        """Discovery -> EBCheck -> plan -> execution, on a toy instance."""
        from repro.core import ebcheck
        from repro.execution import BoundedEngine, NaiveExecutor
        from repro.spc import SPCQueryBuilder

        database = Database.from_relations([_employees()])
        discovered = discover_access_schema(database, max_domain=6, max_fd_lhs=1)
        schema = schema_from_mapping({})  # not needed; build query from relation schema
        query = (
            SPCQueryBuilder(Database.from_relations([_employees()]).schema, name="by_dept")
            .add_atom("employees", alias="e")
            .where_const("e.dept", "sales")
            .select("e.emp_id")
            .build()
        )
        assert ebcheck(query, discovered).effectively_bounded
        engine = BoundedEngine(discovered)
        engine.prepare(database)
        bounded = engine.execute(query, database)
        naive = NaiveExecutor().execute(query, database)
        assert bounded.as_set == naive.as_set == {(1,), (2,)}
