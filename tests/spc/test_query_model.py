"""Unit tests for the SPC query AST, builder and derived parameter sets."""

import pytest

from repro.errors import QueryError
from repro.spc import (
    AttrEq,
    AttrRef,
    ConstEq,
    RelationAtom,
    SPCQuery,
    SPCQueryBuilder,
    single_relation_query,
)
from repro.spc.query import check_query_against_schema


class TestAttrRef:
    def test_ordering_and_pretty(self, q0):
        ref = AttrRef(0, "photo_id")
        assert str(ref) == "S0.photo_id"
        assert ref.pretty(q0.atoms) == "ia.photo_id"
        assert AttrRef(0, "a") < AttrRef(1, "a")


class TestQueryConstruction:
    def test_q0_structure(self, q0):
        assert q0.num_atoms == 3
        assert q0.num_products == 2
        assert q0.num_selections == 5
        assert q0.size == 3 + 5 + 1
        assert not q0.is_boolean

    def test_alias_lookup_and_ref(self, q0):
        assert q0.alias_index("t") == 2
        ref = q0.ref("t", "tagger_id")
        assert ref == AttrRef(2, "tagger_id")
        with pytest.raises(QueryError):
            q0.ref("t", "nonexistent")
        with pytest.raises(QueryError):
            q0.alias_index("zz")

    def test_duplicate_alias_rejected(self, schema):
        builder = SPCQueryBuilder(schema).add_atom("friends", alias="f")
        with pytest.raises(QueryError):
            builder.add_atom("tagging", alias="f")

    def test_invalid_ref_rejected(self, schema):
        atom = RelationAtom(schema.relation("friends"), "f")
        with pytest.raises(QueryError):
            SPCQuery([atom], output=[AttrRef(0, "missing")])
        with pytest.raises(QueryError):
            SPCQuery([atom], output=[AttrRef(5, "user_id")])

    def test_at_least_one_atom(self):
        with pytest.raises(QueryError):
            SPCQuery([])

    def test_boolean_version(self, q0):
        boolean = q0.boolean_version()
        assert boolean.is_boolean and boolean.conditions == q0.conditions


class TestDerivedSets:
    def test_constant_refs_xc(self, q0):
        pretty = {ref.pretty(q0.atoms) for ref in q0.constant_refs}
        # Example 4: X_C = {uid, aid, tid2} (taggee_id = user_id = u0 transitively).
        assert pretty == {"ia.album_id", "f.user_id", "t.taggee_id"}

    def test_condition_only_refs_xb(self, q0):
        pretty = {ref.pretty(q0.atoms) for ref in q0.condition_only_refs}
        # Example 4: X_B = {tid1, fid}.
        assert pretty == {"t.tagger_id", "f.friend_id"}

    def test_parameters_include_output(self, q0):
        assert set(q0.output) <= q0.parameters

    def test_atom_parameters(self, q0):
        tagging_params = {r.attribute for r in q0.atom_parameters(2)}
        assert tagging_params == {"photo_id", "tagger_id", "taggee_id"}
        album_constants = {r.attribute for r in q0.atom_constants(0)}
        assert album_constants == {"album_id"}

    def test_all_refs_covers_schema(self, q0):
        assert len(q0.all_refs()) == 2 + 2 + 3

    def test_q1_has_no_constants(self, q1):
        assert not q1.constant_refs


class TestTransformations:
    def test_with_constants(self, q1):
        ref = q1.ref("ia", "album_id")
        bound = q1.with_constants({ref: "a0"})
        assert ref in bound.constant_refs
        assert bound.num_selections == q1.num_selections + 1
        # The original query is unchanged (immutability).
        assert ref not in q1.constant_refs

    def test_with_output(self, q0):
        new_output = (q0.ref("f", "friend_id"),)
        changed = q0.with_output(new_output)
        assert changed.output == new_output and q0.output != new_output

    def test_equality_and_hash(self, schema):
        first = single_relation_query(schema.relation("friends"), equalities={"user_id": "u0"}, output=["friend_id"])
        second = single_relation_query(schema.relation("friends"), equalities={"user_id": "u0"}, output=["friend_id"])
        assert first == second and hash(first) == hash(second)

    def test_describe_mentions_aliases(self, q0):
        text = q0.describe()
        assert "ia.album_id" in text and "FROM" in text and "WHERE" in text


class TestBuilder:
    def test_unqualified_reference_resolution(self, schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("in_album")
            .where_const("album_id", "a0")
            .select("photo_id")
            .build()
        )
        assert query.output == (AttrRef(0, "photo_id"),)

    def test_ambiguous_reference_rejected(self, schema):
        builder = (
            SPCQueryBuilder(schema).add_atom("in_album", alias="x").add_atom("tagging", alias="y")
        )
        with pytest.raises(QueryError):
            builder.select("photo_id")

    def test_unknown_alias_rejected(self, schema):
        builder = SPCQueryBuilder(schema).add_atom("friends", alias="f")
        with pytest.raises(QueryError):
            builder.where_const("g.user_id", "u0")

    def test_where_accepts_prebuilt_atoms(self, schema):
        query = (
            SPCQueryBuilder(schema)
            .add_atom("friends", alias="f")
            .where(ConstEq(AttrRef(0, "user_id"), "u0"))
            .where(AttrEq(AttrRef(0, "user_id"), AttrRef(0, "friend_id")))
            .boolean()
            .build()
        )
        assert query.num_selections == 2 and query.is_boolean

    def test_single_relation_query_helper(self, schema):
        query = single_relation_query(
            schema.relation("friends"), equalities={"user_id": "u0"}, output=["friend_id"]
        )
        assert query.num_atoms == 1 and query.output[0].attribute == "friend_id"


class TestSchemaCheck:
    def test_check_query_against_schema(self, q0, schema):
        check_query_against_schema(q0, schema)  # should not raise

    def test_check_rejects_foreign_relation(self, q0):
        from repro.relational import schema_from_mapping

        other = schema_from_mapping({"unrelated": ["x"]})
        with pytest.raises(QueryError):
            check_query_against_schema(q0, other)
