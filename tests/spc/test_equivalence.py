"""Unit tests for the equality closure Σ_Q (union–find over the condition)."""

import pytest

from repro.errors import UnsatisfiableQueryError
from repro.spc import AttrEq, AttrRef, ConstEq, EqualityClosure, MISSING


def ref(atom, attr):
    return AttrRef(atom, attr)


class TestEntailment:
    def test_direct_equality(self):
        closure = EqualityClosure([AttrEq(ref(0, "a"), ref(1, "b"))])
        assert closure.entails_eq(ref(0, "a"), ref(1, "b"))
        assert closure.entails_eq(ref(1, "b"), ref(0, "a"))

    def test_transitivity(self):
        closure = EqualityClosure(
            [AttrEq(ref(0, "a"), ref(1, "b")), AttrEq(ref(1, "b"), ref(2, "c"))]
        )
        assert closure.entails_eq(ref(0, "a"), ref(2, "c"))

    def test_reflexivity_for_unknown_refs(self):
        closure = EqualityClosure()
        assert closure.entails_eq(ref(0, "a"), ref(0, "a"))
        assert not closure.entails_eq(ref(0, "a"), ref(0, "b"))

    def test_unrelated_refs_not_entailed(self):
        closure = EqualityClosure([AttrEq(ref(0, "a"), ref(1, "b"))])
        assert not closure.entails_eq(ref(0, "a"), ref(2, "c"))

    def test_q0_example_entailment(self, q0):
        closure = q0.closure
        assert closure.entails_eq(q0.ref("ia", "photo_id"), q0.ref("t", "photo_id"))
        assert closure.entails_eq(q0.ref("t", "taggee_id"), q0.ref("f", "user_id"))


class TestConstants:
    def test_constant_propagates_through_equalities(self):
        closure = EqualityClosure(
            [ConstEq(ref(0, "a"), 5), AttrEq(ref(0, "a"), ref(1, "b"))]
        )
        assert closure.constant_of(ref(1, "b")) == 5
        assert closure.has_constant(ref(1, "b"))

    def test_missing_sentinel_distinguishes_none(self):
        closure = EqualityClosure([ConstEq(ref(0, "a"), None)])
        assert closure.constant_of(ref(0, "a")) is None
        assert closure.constant_of(ref(0, "b")) is MISSING

    def test_constant_refs(self):
        closure = EqualityClosure(
            [ConstEq(ref(0, "a"), 1), AttrEq(ref(0, "a"), ref(1, "b")), AttrEq(ref(2, "c"), ref(3, "d"))]
        )
        assert closure.constant_refs() == frozenset({ref(0, "a"), ref(1, "b")})

    def test_same_constant_twice_is_satisfiable(self):
        closure = EqualityClosure([ConstEq(ref(0, "a"), 1), ConstEq(ref(0, "a"), 1)])
        assert closure.is_satisfiable


class TestSatisfiability:
    def test_direct_conflict(self):
        closure = EqualityClosure([ConstEq(ref(0, "a"), 1), ConstEq(ref(0, "a"), 2)])
        assert not closure.is_satisfiable
        assert set(closure.conflict()) == {1, 2}
        with pytest.raises(UnsatisfiableQueryError):
            closure.require_satisfiable()

    def test_conflict_through_equality_chain(self):
        closure = EqualityClosure(
            [
                ConstEq(ref(0, "a"), 1),
                AttrEq(ref(0, "a"), ref(1, "b")),
                ConstEq(ref(1, "b"), 2),
            ]
        )
        assert not closure.is_satisfiable

    def test_satisfiable_query_passes(self, q0):
        q0.closure.require_satisfiable()


class TestClassQueries:
    def test_equivalent_refs_contains_self(self):
        closure = EqualityClosure()
        assert closure.equivalent_refs(ref(0, "a")) == frozenset({ref(0, "a")})

    def test_equivalent_refs_full_class(self):
        closure = EqualityClosure(
            [AttrEq(ref(0, "a"), ref(1, "b")), AttrEq(ref(1, "b"), ref(2, "c"))]
        )
        assert closure.equivalent_refs(ref(2, "c")) == frozenset(
            {ref(0, "a"), ref(1, "b"), ref(2, "c")}
        )

    def test_classes_and_known_refs(self):
        closure = EqualityClosure(
            [AttrEq(ref(0, "a"), ref(1, "b")), ConstEq(ref(2, "c"), 9)]
        )
        assert closure.known_refs() == frozenset({ref(0, "a"), ref(1, "b"), ref(2, "c")})
        classes = {frozenset(c) for c in closure.classes()}
        assert frozenset({ref(0, "a"), ref(1, "b")}) in classes

    def test_equivalent_any(self):
        closure = EqualityClosure([AttrEq(ref(0, "a"), ref(1, "b"))])
        assert closure.equivalent_any(ref(0, "a"), [ref(1, "b"), ref(2, "c")])
        assert not closure.equivalent_any(ref(0, "a"), [ref(2, "c")])

    def test_incremental_add(self):
        closure = EqualityClosure()
        closure.add(AttrEq(ref(0, "a"), ref(1, "b")))
        closure.add(ConstEq(ref(1, "b"), "v"))
        assert closure.constant_of(ref(0, "a")) == "v"
