"""Unit tests for the SQL-like parser, Lemma 1 normalization and templates."""

import pytest

from repro.errors import ParseError, QueryError
from repro.execution import NaiveExecutor
from repro.relational import Database
from repro.spc import (
    ParameterizedQuery,
    format_query,
    normalize,
    parse_query,
    template_from_refs,
    transform_database,
    transform_query,
    universal_schema,
)
from repro.spc.normalize import PADDING, TAG_ATTRIBUTE


class TestParser:
    def test_parse_q0_equivalent(self, schema, q0):
        text = """
            SELECT ia.photo_id
            FROM in_album AS ia, friends AS f, tagging AS t
            WHERE ia.album_id = 'a0' AND f.user_id = 'u0'
              AND ia.photo_id = t.photo_id
              AND t.tagger_id = f.friend_id
              AND t.taggee_id = f.user_id
        """
        parsed = parse_query(text, schema, name="Q0")
        assert parsed == q0

    def test_parse_numbers_and_strings(self, schema):
        query = parse_query(
            "SELECT f.friend_id FROM friends AS f WHERE f.user_id = 42", schema
        )
        assert list(query.constant_refs)
        assert query.closure.constant_of(query.ref("f", "user_id")) == 42

    def test_parse_boolean_query(self, schema):
        query = parse_query("SELECT BOOLEAN FROM friends AS f WHERE f.user_id = 'u0'", schema)
        assert query.is_boolean

    def test_implicit_alias(self, schema):
        query = parse_query("SELECT f.friend_id FROM friends f", schema)
        assert query.atoms[0].alias == "f"

    def test_default_alias_is_relation_name(self, schema):
        query = parse_query("SELECT friends.friend_id FROM friends", schema)
        assert query.atoms[0].alias == "friends"

    def test_parse_errors(self, schema):
        with pytest.raises(ParseError):
            parse_query("FROM friends AS f", schema)
        with pytest.raises(ParseError):
            parse_query("SELECT f.friend_id FROM friends AS f WHERE f.user_id >", schema)
        with pytest.raises(ParseError):
            parse_query("SELECT f.friend_id FROM friends AS f extra", schema)

    def test_unknown_relation_or_attribute(self, schema):
        from repro.errors import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            parse_query("SELECT x.a FROM missing AS x", schema)
        with pytest.raises(QueryError):
            parse_query("SELECT f.bogus FROM friends AS f", schema)

    def test_format_round_trip(self, schema, q0):
        reparsed = parse_query(format_query(q0), schema, name="Q0")
        assert reparsed == q0

    def test_format_boolean_round_trip(self, schema, q2_boolean):
        reparsed = parse_query(format_query(q2_boolean), schema, name=q2_boolean.name)
        assert reparsed == q2_boolean


class TestLemma1:
    def test_universal_schema_shape(self, schema):
        universal = universal_schema(schema)
        assert TAG_ATTRIBUTE in universal.relation
        assert universal.relation.arity == 1 + schema.total_attributes

    def test_transform_database_tags_and_pads(self, schema, small_social_db):
        universal = universal_schema(schema)
        encoded = transform_database(small_social_db, universal)
        relation = encoded.relation(universal.relation.name)
        assert len(relation) == small_social_db.total_tuples
        tags = {row[0] for row in relation.tuples()}
        assert tags == {"in_album", "friends", "tagging"}
        assert any(PADDING in row for row in relation.tuples())

    def test_lemma1_preserves_answers(self, schema, q0, small_social_db):
        """Q(D) = g_Q(Q)(g_D(D)) — the statement of Lemma 1."""
        original = NaiveExecutor().execute(q0, small_social_db)
        rewritten_query, encoded = normalize(q0, small_social_db)
        rewritten = NaiveExecutor().execute(rewritten_query, encoded)
        assert original.as_set == rewritten.as_set == {("p1",)}

    def test_lemma1_on_boolean_query(self, schema, q2_boolean, small_social_db):
        original = NaiveExecutor().execute(q2_boolean, small_social_db)
        rewritten_query, encoded = normalize(q2_boolean, small_social_db)
        rewritten = NaiveExecutor().execute(rewritten_query, encoded)
        assert original.boolean_value == rewritten.boolean_value is True

    def test_transform_query_keeps_atom_count(self, schema, q0):
        universal = universal_schema(schema)
        rewritten = transform_query(q0, universal)
        assert rewritten.num_atoms == q0.num_atoms
        # One extra tag condition per occurrence.
        assert rewritten.num_selections == q0.num_selections + q0.num_atoms


class TestParameterizedQuery:
    def test_bind_all_parameters(self, q1, access_schema):
        from repro.core import ebcheck

        template = ParameterizedQuery(
            q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
        )
        bound = template.bind(album="a0", user="u0")
        assert ebcheck(bound, access_schema).effectively_bounded

    def test_bind_missing_or_unknown(self, q1):
        template = ParameterizedQuery(q1, {"album": q1.ref("ia", "album_id")})
        with pytest.raises(QueryError):
            template.bind()
        with pytest.raises(QueryError):
            template.bind(album="a0", bogus=1)

    def test_bind_partial(self, q1):
        template = ParameterizedQuery(
            q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
        )
        smaller = template.bind_partial(album="a0")
        assert smaller.parameter_names == ("user",)
        final = smaller.bind(user="u0")
        assert len(final.constant_refs) >= 2

    def test_already_instantiated_parameter_rejected(self, q0):
        with pytest.raises(QueryError):
            ParameterizedQuery(q0, {"album": q0.ref("ia", "album_id")})

    def test_unknown_ref_rejected(self, q1):
        from repro.spc import AttrRef

        with pytest.raises(QueryError):
            ParameterizedQuery(q1, {"x": AttrRef(7, "nope")})

    def test_template_from_refs_names(self, q1):
        refs = {q1.ref("ia", "album_id"), q1.ref("f", "user_id")}
        template = template_from_refs(q1, refs)
        assert set(template.parameter_names) == {"ia_album_id", "f_user_id"}
        assert template.refs() == frozenset(refs)
