"""Unit tests for the experiment harness and its paper-style reports."""

from repro.bench import (
    AlgorithmTimes,
    ComparisonPoint,
    ComparisonSeries,
    CoverageResult,
    ScalingPoint,
    experiment_checker_scaling,
    experiment_vary_access,
    format_algorithm_times,
    format_comparison,
    format_complexity_table,
    format_coverage,
    format_scaling,
)
from repro.workloads import get_workload


class TestResultRecords:
    def test_speedup(self):
        point = ComparisonPoint("x", evaldq_seconds=0.001, naive_seconds=0.01,
                                dq_tuples=10, naive_tuples=100, queries=3)
        assert point.speedup == 10
        zero = ComparisonPoint("x", 0.0, 0.01, 1, 2, 1)
        assert zero.speedup == float("inf")

    def test_coverage_fraction(self):
        result = CoverageResult("w", total=10, bounded=10, effectively_bounded=8)
        assert result.fraction == 0.8
        assert CoverageResult("w", 0, 0, 0).fraction == 0.0

    def test_series_add(self):
        series = ComparisonSeries("w", "|D|")
        series.add(ComparisonPoint("1", 0.1, 0.2, 1, 2, 1))
        assert len(series.points) == 1


class TestFormatting:
    def test_format_comparison_alignment(self):
        series = ComparisonSeries("tfacc", "|D|")
        series.add(ComparisonPoint("0.5", 0.001, 0.05, 100, 5000, 10))
        text = format_comparison(series, title="panel")
        lines = text.splitlines()
        assert lines[0] == "panel"
        assert "speedup" in lines[1] and "50.0x" in text

    def test_format_algorithm_times(self):
        rows = [AlgorithmTimes("tfacc", 0.001, 0.001, 0.002, 0.003)]
        text = format_algorithm_times(rows)
        assert "TFACC" in text and "findDPh" in text and "ms" in text

    def test_format_coverage_totals(self):
        text = format_coverage(
            [
                CoverageResult("a", 15, 15, 12),
                CoverageResult("b", 15, 14, 10),
            ]
        )
        assert "TOTAL" in text and "30" in text and "73%" in text

    def test_format_scaling(self):
        points = [ScalingPoint(10, 100, 1100, 0.001), ScalingPoint(20, 100, 2400, 0.002)]
        text = format_scaling(points)
        assert "|Q|(|A|+|Q|)" in text and "1100" in text

    def test_format_complexity_table_static(self):
        text = format_complexity_table()
        assert "NP-complete" in text and "NPO-complete" in text and "EBnd" in text


class TestHarnessFunctions:
    def test_vary_access_uses_prefixes(self):
        workload = get_workload("tpch")
        series = experiment_vary_access(workload, counts=(12, 20), scale=0.08)
        assert [p.label for p in series.points] == ["12", "20"]
        # More constraints can only reduce the data the bounded plans touch.
        assert series.points[-1].dq_tuples <= series.points[0].dq_tuples + 1e-9

    def test_checker_scaling_points(self):
        workload = get_workload("tfacc")
        points = experiment_checker_scaling(workload, query_counts=(2, 4))
        assert len(points) == 2
        assert points[1].query_size > points[0].query_size
        assert all(p.seconds >= 0 for p in points)
