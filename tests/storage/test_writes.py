"""Unit tests for the live write path: batches, versions, incremental indexes.

The layers under test, bottom-up:

* :class:`~repro.storage.writes.WriteBatch` — the atomic, picklable unit;
* ``Relation.delete_where`` / ``delete_rows`` and the all-or-nothing
  ``extend`` publish semantics;
* :meth:`HashIndex.derived` — copy-on-write incremental maintenance that
  never mutates the superseded snapshot;
* :meth:`Database.apply_writes` — one version bump per committed batch, the
  seqlock write epoch, per-relation versions, validate-then-publish;
* both backends' ``insert`` / ``delete`` / ``apply_writes`` / ``read_view``,
  including the memoized-backend seam regression (a write after
  ``as_backend()`` must be visible) and WAL configuration on file-backed
  SQLite stores;
* :class:`~repro.util.rwlock.ReadWriteLock` — shared/exclusive semantics and
  writer preference.
"""

from __future__ import annotations

import pickle
import sqlite3
import threading
import time

import pytest

from repro.access.constraint import AccessConstraint
from repro.errors import ApiMisuseError, ArityError, SchemaError
from repro.relational import Database
from repro.relational.indexes import HashIndex
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.storage import SQLiteBackend, WriteBatch, as_backend, as_write_batch
from repro.util import ReadWriteLock


def _schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("friends", ["user_id", "friend_id"]),
            RelationSchema("tags", ["photo_id", "user_id"]),
        ]
    )


def _db() -> Database:
    db = Database(_schema())
    db.extend("friends", [("u0", "u1"), ("u0", "u2"), ("u1", "u2")])
    db.extend("tags", [("p0", "u0"), ("p1", "u1")])
    return db


# -- WriteBatch ---------------------------------------------------------------------


class TestWriteBatch:
    def test_normalizes_and_orders_relations(self):
        batch = WriteBatch(
            inserts={"friends": [("u2", "u3")], "tags": [("p2", "u2")]},
            deletes={"tags": [("p0", "u0")]},
        )
        # Deletes first, then inserts, deduplicated in insertion order.
        assert batch.relations == ("tags", "friends")
        assert batch.total_rows == 3
        assert bool(batch)

    def test_empty_batch_is_falsy(self):
        assert not WriteBatch()
        assert WriteBatch(inserts={"friends": []}).relations == ()

    def test_restricted_to(self):
        batch = WriteBatch(
            inserts={"friends": [("a", "b")], "tags": [("p", "u")]},
        )
        only = batch.restricted_to(["tags"])
        assert only.relations == ("tags",)
        assert only.inserts["tags"] == (("p", "u"),)

    def test_pickle_round_trip(self):
        batch = WriteBatch(
            inserts={"friends": [("a", "b")]}, deletes={"tags": [("p", "u")]}
        )
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.inserts == batch.inserts
        assert clone.deletes == batch.deletes
        assert clone.relations == batch.relations

    def test_as_write_batch_rejects_both_forms(self):
        batch = WriteBatch(inserts={"friends": [("a", "b")]})
        with pytest.raises(ApiMisuseError):
            as_write_batch(batch, inserts={"tags": [("p", "u")]})
        assert as_write_batch(batch) is batch
        built = as_write_batch(None, inserts={"friends": [("a", "b")]})
        assert built.relations == ("friends",)


# -- Relation publish semantics ------------------------------------------------------


class TestRelationWrites:
    def test_extend_is_all_or_nothing(self):
        db = _db()
        relation = db.relation("friends")
        before = relation.tuples()
        with pytest.raises(ArityError):
            relation.extend([("u5", "u6"), ("bad",)])
        assert relation.tuples() == before

    def test_delete_rows_removes_every_copy(self):
        db = Database(_schema())
        db.extend("friends", [("a", "b"), ("a", "b"), ("c", "d")])
        removed = db.relation("friends").delete_rows([("a", "b")])
        assert removed == [("a", "b"), ("a", "b")]
        assert db.relation("friends").tuples() == [("c", "d")]

    def test_delete_where_returns_removed(self):
        db = _db()
        removed = db.relation("friends").delete_where(lambda row: row[0] == "u0")
        assert sorted(removed) == [("u0", "u1"), ("u0", "u2")]
        assert db.relation("friends").tuples() == [("u1", "u2")]


# -- HashIndex copy-on-write ---------------------------------------------------------


class TestDerivedIndex:
    def _index(self, db: Database) -> HashIndex:
        return db.build_indexes("friends", [(("user_id",), ["friend_id"])])[0]

    def test_old_snapshot_survives_derivation(self):
        db = _db()
        index = self._index(db)
        derived = index.derived(inserted=[("u0", "u9")], deleted=[("u0", "u1")])
        # The superseded snapshot still answers with the pre-write rows.
        assert sorted(index.probe(("u0",))) == [("u1",), ("u2",)]
        assert sorted(derived.probe(("u0",))) == [("u2",), ("u9",)]

    def test_untouched_buckets_are_shared(self):
        db = _db()
        index = self._index(db)
        derived = index.derived(inserted=[("u0", "u9")])
        # Copy-on-write: only the touched bucket is rebuilt.
        assert derived._buckets[("u1",)] is index._buckets[("u1",)]
        assert derived._buckets[("u0",)] is not index._buckets[("u0",)]

    def test_catalog_maintains_find_without_rescan(self):
        db = _db()
        self._index(db)
        counter = db.counter
        before_scans = counter.scans
        db.apply_writes(inserts={"friends": [("u0", "u9")]})
        found = db.indexes.find("friends", ("user_id",), ("friend_id",))
        assert found is not None
        assert sorted(found.probe_shared(("u0",))) == [("u1",), ("u2",), ("u9",)]
        # Incremental maintenance: the write triggered no relation scan.
        assert counter.scans == before_scans


# -- Database.apply_writes -----------------------------------------------------------


class TestDatabaseApplyWrites:
    def test_counts_and_single_version_bump(self):
        db = _db()
        v0 = db.data_version
        counts = db.apply_writes(
            inserts={"friends": [("u2", "u3")], "tags": [("p2", "u2")]},
            deletes={"friends": [("u1", "u2")]},
        )
        assert counts == {"friends": (1, 1), "tags": (1, 0)}
        assert db.data_version == v0 + 1
        assert db.write_epoch % 2 == 0

    def test_per_relation_versions_scope_the_bump(self):
        db = _db()
        friends_v = db.relation_version("friends")
        tags_v = db.relation_version("tags")
        db.apply_writes(inserts={"friends": [("u3", "u4")]})
        assert db.relation_version("friends") == friends_v + 1
        assert db.relation_version("tags") == tags_v

    def test_empty_batch_does_not_bump(self):
        db = _db()
        v0 = db.data_version
        assert db.apply_writes(inserts={"friends": []}) == {}
        assert db.data_version == v0

    def test_validation_failure_publishes_nothing(self):
        db = _db()
        v0 = db.data_version
        before = db.relation("friends").tuples()
        with pytest.raises(ArityError):
            db.apply_writes(
                inserts={"friends": [("ok", "row")], "tags": [("too", "many", "cols")]}
            )
        assert db.relation("friends").tuples() == before
        assert db.data_version == v0

    def test_deletes_apply_before_inserts_per_relation(self):
        db = _db()
        db.apply_writes(
            inserts={"friends": [("u0", "u1")]},
            deletes={"friends": [("u0", "u1")]},
        )
        # The delete removed the old copy; the insert re-added one.
        assert db.relation("friends").tuples().count(("u0", "u1")) == 1

    def test_delete_with_predicate(self):
        db = _db()
        removed = db.delete("friends", lambda row: row[0] == "u0")
        assert removed == 2
        assert db.relation("friends").tuples() == [("u1", "u2")]


# -- the memoized-backend seam (satellite regression) --------------------------------


class TestBackendSeam:
    CONSTRAINT = AccessConstraint("friends", ["user_id"], ["friend_id"], 10)
    OTHER = AccessConstraint("tags", ["photo_id"], ["user_id"], 10)

    def test_write_after_as_backend_is_visible(self):
        db = _db()
        backend = as_backend(db)
        assert sorted(backend.fetch(self.CONSTRAINT, [("u0",)])) == [
            ("u0", "u1"),
            ("u0", "u2"),
        ]
        db.insert("friends", ("u0", "u9"))
        assert sorted(backend.fetch(self.CONSTRAINT, [("u0",)])) == [
            ("u0", "u1"),
            ("u0", "u2"),
            ("u0", "u9"),
        ]

    def test_backend_write_api_round_trips(self):
        db = _db()
        backend = as_backend(db)
        assert backend.insert("friends", [("u7", "u8")]) == 1
        assert ("u7", "u8") in backend.dump("friends")
        assert backend.delete("friends", [("u7", "u8")]) == 1
        assert ("u7", "u8") not in backend.dump("friends")

    def test_invalidation_is_scoped_per_relation(self):
        db = _db()
        backend = as_backend(db)
        backend.fetch(self.CONSTRAINT, [("u0",)])
        backend.fetch(self.OTHER, [("p0",)])
        untouched_view = backend._views[(self.OTHER, True)]
        db.insert("friends", ("u0", "u9"))
        backend.fetch(self.CONSTRAINT, [("u0",)])
        backend.fetch(self.OTHER, [("p0",)])
        # The written relation's view was rebuilt; the other stayed bound.
        assert backend._views[(self.OTHER, True)] is untouched_view

    def test_memory_read_view_yields_none(self):
        backend = as_backend(_db())
        with backend.read_view() as version:
            assert version is None


# -- SQLite backend ------------------------------------------------------------------


class TestSQLiteWrites:
    def test_insert_delete_parity_with_memory(self):
        db = _db()
        backend = SQLiteBackend.from_database(db)
        v0 = backend.data_version
        counts = backend.apply_writes(
            as_write_batch(
                None,
                inserts={"friends": [("u2", "u3")]},
                deletes={"tags": [("p0", "u0")]},
            )
        )
        assert counts == {"tags": (0, 1), "friends": (1, 0)}
        assert backend.data_version == v0 + 1
        assert ("u2", "u3") in backend.dump("friends")
        assert ("p0", "u0") not in backend.dump("tags")

    def test_delete_removes_every_copy(self):
        db = Database(_schema())
        db.extend("friends", [("a", "b"), ("a", "b"), ("c", "d")])
        backend = SQLiteBackend.from_database(db)
        assert backend.delete("friends", [("a", "b")]) == 2
        assert backend.dump("friends") == [("c", "d")]

    def test_predicate_delete(self):
        backend = SQLiteBackend.from_database(_db())
        assert backend.delete("friends", lambda row: row[0] == "u0") == 2
        assert backend.dump("friends") == [("u1", "u2")]

    def test_read_view_pins_a_version(self):
        backend = SQLiteBackend.from_database(_db())
        with backend.read_view() as version:
            assert version == backend.data_version
        backend.insert("friends", [("x", "y")])
        with backend.read_view() as version:
            assert version == backend.data_version

    def test_validation_failure_applies_nothing(self):
        backend = SQLiteBackend.from_database(_db())
        before = backend.dump("friends")
        v0 = backend.data_version
        with pytest.raises(SchemaError):
            backend.apply_writes(
                as_write_batch(
                    None,
                    inserts={"friends": [("ok", "row"), ("bad", object())]},
                )
            )
        assert backend.dump("friends") == before
        assert backend.data_version == v0

    def test_file_backed_store_uses_wal(self, tmp_path):
        path = str(tmp_path / "store.db")
        backend = SQLiteBackend.from_database(_db(), path=path)
        mode = backend._connections.get().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        backend.insert("friends", [("w", "x")])
        assert ("w", "x") in backend.dump("friends")
        # An independent connection sees the committed write (WAL persists).
        with sqlite3.connect(path) as conn:
            rows = conn.execute("SELECT * FROM friends").fetchall()
        assert ("w", "x") in rows

    def test_memory_store_skips_wal_keeps_busy_timeout(self):
        backend = SQLiteBackend.from_database(_db())
        conn = backend._connections.get()
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "memory"
        assert conn.execute("PRAGMA busy_timeout").fetchone()[0] == 5000

    def test_writes_visible_from_other_threads(self):
        backend = SQLiteBackend.from_database(_db())
        backend.insert("friends", [("t", "u")])
        seen: list = []

        def reader() -> None:
            seen.append(backend.dump("friends"))

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join()
        assert ("t", "u") in seen[0]


# -- ReadWriteLock -------------------------------------------------------------------


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Event()
        release = threading.Event()

        def reader() -> None:
            with lock.read():
                inside.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=reader)
        thread.start()
        assert inside.wait(timeout=5.0)
        # A second reader enters while the first still holds the shared side.
        entered = []
        with lock.read():
            entered.append(True)
        release.set()
        thread.join()
        assert entered == [True]

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        writing = threading.Event()
        release = threading.Event()

        def writer() -> None:
            with lock.write():
                writing.set()
                release.wait(timeout=5.0)
                order.append("write-done")

        thread = threading.Thread(target=writer)
        thread.start()
        assert writing.wait(timeout=5.0)

        def reader() -> None:
            with lock.read():
                order.append("read")

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        time.sleep(0.02)
        release.set()
        thread.join()
        reader_thread.join()
        assert order == ["write-done", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        reading = threading.Event()
        release_reader = threading.Event()

        def first_reader() -> None:
            with lock.read():
                reading.set()
                release_reader.wait(timeout=5.0)

        def writer() -> None:
            with lock.write():
                order.append("writer")

        def late_reader() -> None:
            with lock.read():
                order.append("late-reader")

        r1 = threading.Thread(target=first_reader)
        r1.start()
        assert reading.wait(timeout=5.0)
        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.02)  # let the writer queue up
        r2 = threading.Thread(target=late_reader)
        r2.start()
        time.sleep(0.02)
        release_reader.set()
        for thread in (r1, w, r2):
            thread.join()
        # Writer preference: the queued writer went before the late reader.
        assert order == ["writer", "late-reader"]
