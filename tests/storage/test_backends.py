"""Unit tests for the storage-backend protocol and its two implementations.

The backends must be observationally interchangeable: same rows, same access
charges, same bound enforcement.  These tests pin the protocol surface
(``as_backend`` resolution, scan/fetch/contains charging, index idempotence),
the SQLite specifics (IN-list batching, NULL keys, storable-type checks) and
the satellite behaviors that ride on the seam (strict CSV loading, duplicate
relation detection, backend monitoring in the engine).
"""

from __future__ import annotations

import pytest

from repro.access import AccessConstraint, AccessSchema, build_access_indexes
from repro.errors import (
    ConstraintViolationError,
    ExecutionError,
    SchemaError,
    UnknownRelationError,
    WorkloadError,
)
from repro.execution import BoundedEngine, NaiveExecutor, NestedLoopExecutor
from repro.relational import Database, Relation, RelationSchema, schema_from_mapping
from repro.relational.csvio import read_database_into, read_relation_csv
from repro.relational.types import INT
from repro.storage import InMemoryBackend, SQLiteBackend, as_backend
from repro.storage.sqlite import FETCH_CHUNK_SIZE
from repro.workloads import query_q0, social_access_schema, social_workload


@pytest.fixture()
def orders_schema():
    return schema_from_mapping({"orders": ["customer", "item", "qty"]})


@pytest.fixture()
def orders_rows():
    return [
        ("c0", "apple", 1),
        ("c0", "pear", 2),
        ("c0", "apple", 1),  # duplicate tuple: DISTINCT fetch must collapse it
        ("c1", "apple", 3),
        ("c2", "fig", 4),
    ]


@pytest.fixture(params=["memory", "sqlite"])
def orders_backend(request, orders_schema, orders_rows):
    if request.param == "memory":
        database = Database(orders_schema)
        database.extend("orders", orders_rows)
        return database.backend
    backend = SQLiteBackend(orders_schema)
    backend.populate("orders", orders_rows)
    return backend


_BY_CUSTOMER = AccessConstraint("orders", ["customer"], ["item"], bound=5)


class TestAsBackend:
    def test_database_resolves_to_memoized_memory_backend(self, orders_schema):
        database = Database(orders_schema)
        backend = as_backend(database)
        assert isinstance(backend, InMemoryBackend)
        assert backend is as_backend(database) is database.backend

    def test_backend_resolves_to_itself(self, orders_schema):
        backend = SQLiteBackend(orders_schema)
        assert as_backend(backend) is backend

    def test_non_backend_raises(self):
        with pytest.raises(ExecutionError, match="not a StorageBackend"):
            as_backend(object())


class TestProtocolContract:
    """Both backends honor the same data, metadata and charging contract."""

    def test_metadata(self, orders_backend):
        assert orders_backend.relation_names() == ("orders",)
        assert orders_backend.cardinality("orders") == 5
        assert orders_backend.total_tuples == 5
        with pytest.raises(UnknownRelationError):
            orders_backend.cardinality("nope")

    def test_scan_returns_rows_and_charges_one_scan(self, orders_backend, orders_rows):
        before = orders_backend.access_snapshot()
        rows = orders_backend.scan("orders")
        delta = orders_backend.accesses_since(before)
        assert sorted(rows) == sorted(orders_rows)
        assert delta.scans == 1 and delta.scanned == 5 and delta.index_probed == 0

    def test_fetch_dedups_candidates_and_charges_per_distinct_key(self, orders_backend):
        orders_backend.build_indexes([_BY_CUSTOMER])
        before = orders_backend.access_snapshot()
        rows = orders_backend.fetch(
            _BY_CUSTOMER, [("c0",), ("c0",), ("c1",), ("missing",)]
        )
        delta = orders_backend.accesses_since(before)
        # c0 -> {(c0, apple), (c0, pear)}, c1 -> {(c1, apple)}, missing -> {}.
        assert set(rows) == {("c0", "apple"), ("c0", "pear"), ("c1", "apple")}
        assert delta.lookups == 3  # duplicate candidate charged once, miss charged
        assert delta.index_probed == 3
        assert delta.scans == 0

    def test_fetch_enforces_the_cardinality_bound(self, orders_backend):
        tight = AccessConstraint("orders", ["customer"], ["item"], bound=1)
        orders_backend.build_indexes([tight])
        with pytest.raises(ConstraintViolationError) as excinfo:
            orders_backend.fetch(tight, [("c0",)])
        assert excinfo.value.witness == ("c0",)
        # Unenforced fetch returns the rows regardless.
        rows = orders_backend.fetch(tight, [("c0",)], enforce_bound=False)
        assert len(rows) == 2

    def test_empty_x_constraint_fetches_distinct_projection(self, orders_backend):
        domain = AccessConstraint("orders", [], ["item"], bound=10)
        orders_backend.build_indexes([domain])
        before = orders_backend.access_snapshot()
        rows = orders_backend.fetch(domain, [()])
        delta = orders_backend.accesses_since(before)
        assert set(rows) == {("apple",), ("pear",), ("fig",)}
        assert delta.lookups == 1 and delta.index_probed == 3

    def test_contains_charges_a_membership_probe(self, orders_backend):
        orders_backend.build_indexes([_BY_CUSTOMER])
        before = orders_backend.access_snapshot()
        assert orders_backend.contains(_BY_CUSTOMER, ("c0",)) is True
        assert orders_backend.contains(_BY_CUSTOMER, ("zz",)) is False
        delta = orders_backend.accesses_since(before)
        assert delta.lookups == 2 and delta.index_probed == 1

    def test_build_indexes_skips_absent_relations(self, orders_backend):
        foreign = AccessConstraint("elsewhere", ["a"], ["b"], bound=1)
        indexes = orders_backend.build_indexes([foreign, _BY_CUSTOMER])
        assert _BY_CUSTOMER in indexes
        assert foreign not in indexes

    def test_populate_rejects_wrong_arity(self, orders_backend):
        with pytest.raises(SchemaError):
            orders_backend.populate("orders", [("only-two", 1)])

    def test_populate_after_build_indexes_is_visible_to_fetch(self, orders_backend):
        """Regression: the memory backend's views must not serve index snapshots.

        SQLite indexes see live tables; the hash-index backend must match by
        invalidating (and rebuilding) a relation's indexes when new tuples
        arrive after construction.
        """
        orders_backend.build_indexes([_BY_CUSTOMER])
        assert set(orders_backend.fetch(_BY_CUSTOMER, [("c9",)])) == set()
        orders_backend.populate("orders", [("c9", "kiwi", 9), ("c0", "plum", 5)])
        assert set(orders_backend.fetch(_BY_CUSTOMER, [("c9",)])) == {("c9", "kiwi")}
        assert set(orders_backend.fetch(_BY_CUSTOMER, [("c0",)])) == {
            ("c0", "apple"),
            ("c0", "pear"),
            ("c0", "plum"),
        }
        assert orders_backend.contains(_BY_CUSTOMER, ("c9",)) is True

    def test_mutation_after_prepare_reaches_executor_level_caches(
        self, orders_backend
    ):
        """Regression: executor-prepared indexes must rebuild after mutation.

        ``BoundedExecutor.prepare`` memoizes AccessIndexes per backend; a
        ``data_version`` bump (Database.extend / backend.populate) must evict
        that snapshot so served queries see the new rows on both backends.
        """
        from repro.execution import BoundedExecutor

        executor = BoundedExecutor()
        schema = AccessSchema([_BY_CUSTOMER])
        indexes = executor.prepare(orders_backend, schema)
        view = indexes.for_constraint(_BY_CUSTOMER)
        assert set(view.fetch(("c9",))) == set()
        orders_backend.populate("orders", [("c9", "kiwi", 9)])
        refreshed = executor.prepare(orders_backend, schema)
        assert set(refreshed.for_constraint(_BY_CUSTOMER).fetch(("c9",))) == {
            ("c9", "kiwi")
        }

    def test_database_extend_invalidates_memory_indexes(self, orders_schema, orders_rows):
        """Mutating through Database.extend (not just populate) drops stale indexes."""
        database = Database(orders_schema)
        database.extend("orders", orders_rows)
        backend = database.backend
        backend.build_indexes([_BY_CUSTOMER])
        assert set(backend.fetch(_BY_CUSTOMER, [("c9",)])) == set()
        database.extend("orders", [("c9", "kiwi", 9)])
        assert set(backend.fetch(_BY_CUSTOMER, [("c9",)])) == {("c9", "kiwi")}


class TestSQLiteSpecifics:
    def test_composite_key_fetch_matches_memory(self, orders_schema, orders_rows):
        constraint = AccessConstraint("orders", ["customer", "item"], ["qty"], bound=3)
        database = Database(orders_schema)
        database.extend("orders", orders_rows)
        sqlite_backend = SQLiteBackend.from_database(database)
        keys = [("c0", "apple"), ("c1", "apple"), ("c0", "nope")]
        for backend in (database.backend, sqlite_backend):
            backend.build_indexes([constraint])
        memory_rows = database.backend.fetch(constraint, keys)
        sqlite_rows = sqlite_backend.fetch(constraint, keys)
        assert set(memory_rows) == set(sqlite_rows)
        assert len(memory_rows) == len(sqlite_rows)

    def test_null_keys_fall_back_to_is_comparisons(self, orders_schema):
        rows = [("c0", None, 1), ("c0", "apple", 2), (None, "apple", 3)]
        constraint = AccessConstraint("orders", ["customer", "item"], ["qty"], bound=3)
        database = Database(orders_schema)
        database.extend("orders", rows)
        sqlite_backend = SQLiteBackend.from_database(database)
        keys = [("c0", None), (None, "apple"), ("c0", "apple"), (None, None)]
        memory = database.backend.fetch(constraint, keys)
        before = sqlite_backend.access_snapshot()
        sqlite_rows = sqlite_backend.fetch(constraint, keys)
        delta = sqlite_backend.accesses_since(before)
        assert set(memory) == set(sqlite_rows)
        assert delta.lookups == 4  # every key charged, including the NULL ones

    def test_fetch_chunks_large_in_lists(self, orders_schema):
        database = Database(orders_schema)
        database.extend("orders", [(f"c{i}", "x", i) for i in range(FETCH_CHUNK_SIZE + 50)])
        backend = SQLiteBackend.from_database(database)
        keys = [(f"c{i}",) for i in range(FETCH_CHUNK_SIZE + 50)]
        rows = backend.fetch(_BY_CUSTOMER, keys, enforce_bound=False)
        assert len(rows) == FETCH_CHUNK_SIZE + 50

    def test_populate_rejects_unstorable_values_with_context(self, orders_schema):
        backend = SQLiteBackend(orders_schema)
        with pytest.raises(SchemaError, match=r"row 1, column 'item'"):
            backend.populate("orders", [("c0", "ok", 1), ("c1", ("tu", "ple"), 2)])

    def test_from_database_replaces_an_existing_file(self, orders_schema, orders_rows, tmp_path):
        """Regression: re-materializing into the same path must not append.

        Mixing two generations of rows inflates cardinalities and can
        spuriously violate constraint bounds.
        """
        path = str(tmp_path / "store.sqlite3")
        first = Database(orders_schema)
        first.extend("orders", orders_rows)
        SQLiteBackend.from_database(first, path=path).close()
        second = Database(orders_schema)
        second.extend("orders", [("z0", "kiwi", 1)])
        backend = SQLiteBackend.from_database(second, path=path)
        assert backend.cardinality("orders") == 1
        assert backend.scan("orders") == [("z0", "kiwi", 1)]

    def test_reopening_a_file_reuses_its_contents(self, orders_schema, orders_rows, tmp_path):
        path = str(tmp_path / "store.sqlite3")
        database = Database(orders_schema)
        database.extend("orders", orders_rows)
        SQLiteBackend.from_database(database, path=path).close()
        reopened = SQLiteBackend(orders_schema, path=path)
        assert reopened.cardinality("orders") == len(orders_rows)

    def test_failed_populate_rolls_back_flushed_chunks(self, orders_schema, monkeypatch):
        """Regression: a mid-stream failure must not leave orphan rows behind.

        Flushed-but-uncommitted chunks used to survive the error and get
        durably committed by the next unrelated commit.
        """
        import repro.storage.sqlite as sqlite_module

        monkeypatch.setattr(sqlite_module, "POPULATE_CHUNK_SIZE", 2)
        backend = SQLiteBackend(orders_schema)

        def rows():
            yield ("c0", "apple", 1)
            yield ("c1", "pear", 2)
            yield ("c2", "fig", 3)
            yield ("c3", ("not",), 4)  # unstorable after a chunk has flushed

        with pytest.raises(SchemaError):
            backend.populate("orders", rows())
        assert backend.cardinality("orders") == 0
        backend.build_indexes([_BY_CUSTOMER])  # next commit must find nothing
        assert backend.cardinality("orders") == 0

    def test_fetch_and_contains_reject_unknown_relations(self, orders_schema):
        backend = SQLiteBackend(orders_schema)
        foreign = AccessConstraint("elsewhere", ["a"], ["b"], bound=1)
        with pytest.raises(UnknownRelationError):
            backend.fetch(foreign, [("x",)])
        with pytest.raises(UnknownRelationError):
            backend.contains(foreign, ("x",))

    def test_build_indexes_is_idempotent(self, orders_schema):
        backend = SQLiteBackend(orders_schema)
        first = backend.build_indexes([_BY_CUSTOMER])
        second = backend.build_indexes([_BY_CUSTOMER])
        assert _BY_CUSTOMER in first and _BY_CUSTOMER in second

    def test_quoted_identifiers_survive_odd_names(self):
        schema = schema_from_mapping({"order table": ["weird col", "val"]})
        backend = SQLiteBackend(schema)
        backend.populate("order table", [("k", 1)])
        constraint = AccessConstraint("order table", ["weird col"], ["val"], bound=2)
        backend.build_indexes([constraint])
        assert backend.fetch(constraint, [("k",)]) == [("k", 1)]
        assert backend.scan("order table") == [("k", 1)]


class TestEngineOverBackends:
    """The whole engine stack runs unchanged over either store."""

    @pytest.fixture()
    def stores(self):
        workload = social_workload()
        database = workload.database(scale=0.1, seed=3)
        return database, workload.to_backend("sqlite", database=database)

    def test_bounded_execution_parity(self, stores):
        database, sqlite_backend = stores
        engine = BoundedEngine(social_access_schema())
        query = query_q0(album_id="a0", user_id="u0")
        memory = engine.execute(query, database)
        sqlite_result = engine.execute(query, sqlite_backend)
        assert memory.as_set == sqlite_result.as_set
        assert memory.stats.tuples_accessed == sqlite_result.stats.tuples_accessed
        assert sqlite_result.stats.backend == "sqlite"

    def test_naive_executors_scan_backends(self, stores):
        database, sqlite_backend = stores
        query = query_q0(album_id="a0", user_id="u0")
        memory = NaiveExecutor().execute(query, database)
        sqlite_result = NaiveExecutor().execute(query, sqlite_backend)
        assert memory.as_set == sqlite_result.as_set
        assert memory.stats.tuples_accessed == sqlite_result.stats.tuples_accessed
        assert sqlite_result.stats.scans == len(query.atoms)

    def test_nested_loop_executor_accepts_backends(self, orders_schema, orders_rows):
        from repro.spc import SPCQueryBuilder

        database = Database(orders_schema)
        database.extend("orders", orders_rows)
        backend = SQLiteBackend.from_database(database)
        query = (
            SPCQueryBuilder(orders_schema, name="nl")
            .add_atom("orders", alias="o")
            .where_const("o.customer", "c0")
            .select("o.item")
            .build()
        )
        assert (
            NestedLoopExecutor().execute(query, backend).as_set
            == NestedLoopExecutor().execute(query, database).as_set
            == {("apple",), ("pear",)}
        )

    def test_prepared_queries_serve_from_sqlite(self, stores):
        from repro.spc import ParameterizedQuery
        from repro.workloads import query_q1

        database, sqlite_backend = stores
        q1 = query_q1()
        template = ParameterizedQuery(
            q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
        )
        engine = BoundedEngine(social_access_schema())
        prepared = engine.prepare_query(template)
        prepared.warm(sqlite_backend)
        for binding in ({"album": "a0", "user": "u0"}, {"album": "a1", "user": "u2"}):
            served = prepared.execute(sqlite_backend, **binding)
            reference = engine.execute(template.bind(**binding), database)
            assert served.as_set == reference.as_set
            assert served.stats.tuples_accessed == reference.stats.tuples_accessed

    def test_cache_info_and_report_surface_backend_kinds(self, stores):
        database, sqlite_backend = stores
        engine = BoundedEngine(social_access_schema())
        engine.prepare(database)
        engine.prepare(sqlite_backend)
        info = engine.cache_info()
        assert info["backends"].kinds == ("memory", "sqlite")
        # Every cache_info entry shares the describe() monitoring surface.
        assert all(hasattr(entry, "describe") for entry in info.values())
        report = engine.check(query_q0(album_id="a0", user_id="u0"))
        assert report.backend_kinds == ("memory", "sqlite")
        described = report.describe()
        assert "storage backends prepared: memory, sqlite" in described
        assert "plan cache" in described and "negative cache" in described
        # Report keys match cache_info()'s, so monitoring code can share them.
        assert set(report.serving_caches) == {"plan", "negative", "prepared"}

    def test_build_access_indexes_accepts_database_and_backend(self, stores):
        database, sqlite_backend = stores
        access = social_access_schema()
        for source in (database, sqlite_backend):
            indexes = build_access_indexes(source, access)
            assert len(indexes) == len(
                [c for c in access if c.relation in database.schema]
            )


class TestWorkloadToBackend:
    def test_memory_kind_returns_database_backend(self):
        workload = social_workload()
        backend = workload.to_backend("memory", scale=0.05)
        assert isinstance(backend, InMemoryBackend)

    def test_sqlite_kind_materializes_all_relations(self):
        workload = social_workload()
        database = workload.database(scale=0.05, seed=1)
        backend = workload.to_backend("sqlite", database=database)
        assert isinstance(backend, SQLiteBackend)
        assert backend.total_tuples == database.total_tuples

    def test_unknown_kind_raises(self):
        with pytest.raises(WorkloadError, match="unknown storage backend"):
            social_workload().to_backend("parquet", scale=0.05)


class TestStrictCsv:
    @pytest.fixture()
    def typed_schema(self):
        return RelationSchema("m", [("id", INT), "label"])

    def test_strict_mode_raises_with_row_and_column_context(self, tmp_path, typed_schema):
        path = tmp_path / "m.csv"
        path.write_text("id,label\n1,ok\noops,bad\n")
        with pytest.raises(SchemaError, match=r"row 3, column 'id' of relation 'm'"):
            read_relation_csv(typed_schema, path, strict=True)

    def test_default_mode_keeps_the_raw_string(self, tmp_path, typed_schema):
        path = tmp_path / "m.csv"
        path.write_text("id,label\n1,ok\noops,bad\n")
        relation = read_relation_csv(typed_schema, path)
        assert relation.tuples() == [(1, "ok"), ("oops", "bad")]

    def test_read_database_into_loads_any_backend(self, tmp_path):
        from repro.relational.csvio import write_database_csv

        schema = schema_from_mapping({"r": ["a", "b"], "s": ["c"]})
        database = Database(schema)
        database.extend("r", [("x", 1), ("y", 2)])
        database.extend("s", [(7,)])
        write_database_csv(database, tmp_path)
        backend = read_database_into(SQLiteBackend(schema), tmp_path)
        assert backend.cardinality("r") == 2 and backend.cardinality("s") == 1
        assert sorted(backend.scan("r")) == [("x", 1), ("y", 2)]

    def test_workload_load_database_is_strict(self, tmp_path):
        workload = social_workload()
        from repro.relational.csvio import write_database_csv

        write_database_csv(workload.database(scale=0.02), tmp_path)
        loaded = workload.load_database(tmp_path)
        assert set(loaded.schema.relation_names) == set(workload.schema.relation_names)


class TestFromRelationsDuplicates:
    def test_duplicate_relation_names_raise_with_positions(self):
        first = Relation(RelationSchema("r", ["a"]), [(1,)])
        second = Relation(RelationSchema("r", ["a"]), [(2,)])
        with pytest.raises(SchemaError, match=r"duplicate relation name 'r'.*positions 0 and 1"):
            Database.from_relations([first, second])

    def test_distinct_names_still_build(self):
        relations = [
            Relation(RelationSchema("r", ["a"]), [(1,)]),
            Relation(RelationSchema("s", ["a"]), [(2,)]),
        ]
        database = Database.from_relations(relations)
        assert database.relation("r").tuples() == [(1,)]
        assert database.relation("s").tuples() == [(2,)]
