"""Fault injection and wrapper-backend behavior: deterministic chaos at the seam.

Covers the storage half of the resilience subsystem: the seeded
:class:`FaultPlan` schedule (reproducible from its seed alone), the typed
fault taxonomy (transient vs unavailable, pre- vs post-charge), runtime
outage toggling, charging transparency of the wrappers, decorator
composition, and the seeded-jitter latency mode of the refactored
:class:`LatencyInjectingBackend`.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ApiMisuseError,
    StorageUnavailableError,
    TransientStorageError,
)
from repro.execution import BoundedEngine
from repro.spc import ParameterizedQuery
from repro.storage import (
    FaultInjectingBackend,
    FaultPlan,
    LatencyInjectingBackend,
    SeededJitter,
    WrapperBackend,
    as_backend,
)
from repro.workloads import (
    generate_social_database,
    query_q1,
    social_access_schema,
)


@pytest.fixture(scope="module")
def social_db():
    return generate_social_database(scale=0.25, seed=3)


def _template():
    q1 = query_q1()
    return ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )


# -- SeededJitter ------------------------------------------------------------------


def test_seeded_jitter_is_deterministic_and_uniform_range():
    a, b = SeededJitter(42), SeededJitter(42)
    draws = [a.uniform() for _ in range(200)]
    assert draws == [b.uniform() for _ in range(200)]
    assert all(0.0 <= draw < 1.0 for draw in draws)
    # Different seeds give different streams.
    assert draws != [SeededJitter(43).uniform() for _ in range(200)]
    # Crude uniformity: the mean of 200 draws is nowhere near the edges.
    assert 0.3 < sum(draws) / len(draws) < 0.7


# -- FaultPlan: the deterministic schedule -----------------------------------------


def test_fault_plan_is_deterministic_from_its_seed():
    operations = [("friends", "fetch"), ("tagging", "scan"), ("in_album", "fetch")] * 20
    plans = [
        FaultPlan(seed=11, transient_fault_rate=0.4, spike_rate=0.2, spike_seconds=0.01)
        for _ in range(2)
    ]
    schedules = [
        [plan.decide(relation, operation) for relation, operation in operations]
        for plan in plans
    ]
    assert schedules[0] == schedules[1]
    assert any(decision.transient for decision in schedules[0])
    assert any(decision.spike_seconds > 0 for decision in schedules[0])


def test_fault_plan_rate_zero_injects_nothing():
    plan = FaultPlan(seed=5)
    for _ in range(100):
        decision = plan.decide("friends", "fetch")
        assert not decision.transient and not decision.unavailable
        assert decision.spike_seconds == 0.0
    assert plan.stats() == {"transient": 0, "outages": 0, "spikes": 0}


def test_fault_plan_post_charge_fraction_splits_the_faults():
    always_after = FaultPlan(seed=1, transient_fault_rate=1.0, post_charge_fraction=1.0)
    always_before = FaultPlan(seed=1, transient_fault_rate=1.0, post_charge_fraction=0.0)
    for _ in range(20):
        assert always_after.decide("friends", "fetch").after_charge
        assert not always_before.decide("friends", "fetch").after_charge


def test_fault_plan_outages_toggle_at_runtime():
    plan = FaultPlan(seed=0, unavailable_relations=["friends"])
    assert plan.decide("friends", "fetch").unavailable
    assert not plan.decide("tagging", "fetch").unavailable
    plan.restore_relation("friends")
    assert not plan.decide("friends", "fetch").unavailable
    plan.fail_relation("tagging")
    assert plan.decide("tagging", "scan").unavailable
    assert plan.stats()["outages"] == 2


def test_fault_plan_scan_rate_defaults_and_overrides():
    plan = FaultPlan(seed=2, transient_fault_rate=1.0, scan_fault_rate=0.0)
    assert not plan.decide("friends", "scan").transient
    assert plan.decide("friends", "fetch").transient


def test_fault_plan_validates_probabilities():
    with pytest.raises(ApiMisuseError):
        FaultPlan(transient_fault_rate=1.5)
    with pytest.raises(ApiMisuseError):
        FaultPlan(post_charge_fraction=-0.1)


# -- FaultInjectingBackend ---------------------------------------------------------


def test_injected_faults_carry_the_typed_taxonomy(social_db):
    chaotic = FaultInjectingBackend(
        social_db, FaultPlan(seed=3, transient_fault_rate=1.0, post_charge_fraction=0.0)
    )
    with pytest.raises(TransientStorageError) as transient:
        chaotic.scan("friends")
    assert transient.value.relation == "friends"
    assert transient.value.operation == "scan"
    assert transient.value.charged is False

    down = FaultInjectingBackend(social_db, FaultPlan(unavailable_relations=["friends"]))
    with pytest.raises(StorageUnavailableError) as outage:
        down.scan("friends")
    assert outage.value.relation == "friends"


def test_post_charge_fault_fires_after_the_counter_was_charged(social_db):
    backend = as_backend(social_db)
    chaotic = FaultInjectingBackend(
        backend, FaultPlan(seed=3, transient_fault_rate=1.0, post_charge_fraction=1.0)
    )
    mark = backend.counter.snapshot()
    with pytest.raises(TransientStorageError) as caught:
        chaotic.scan("friends")
    assert caught.value.charged is True
    charged = backend.counter.since(mark).total
    assert charged > 0  # the inner access went through before the fault
    backend.counter.restore(mark)
    assert backend.counter.since(mark).total == 0


def test_quiet_plan_is_charging_and_result_transparent(social_db):
    backend = as_backend(social_db)
    quiet = FaultInjectingBackend(backend, FaultPlan(seed=9))
    mark = backend.counter.snapshot()
    direct = backend.scan("friends")
    direct_cost = backend.counter.since(mark).total
    mark = backend.counter.snapshot()
    wrapped = quiet.scan("friends")
    assert wrapped == direct
    assert backend.counter.since(mark).total == direct_cost
    assert quiet.kind == backend.kind
    assert quiet.counter is backend.counter


def test_plan_execution_experiences_faults_through_views(social_db):
    """The bounded executor probes via build_indexes views, not raw fetch."""
    chaotic = FaultInjectingBackend(
        social_db, FaultPlan(seed=7, transient_fault_rate=1.0, post_charge_fraction=0.0)
    )
    engine = BoundedEngine(social_access_schema())
    prepared = engine.prepare_query(_template())
    prepared.warm(chaotic)
    with pytest.raises(TransientStorageError) as caught:
        prepared.execute(chaotic, album="a0", user="u0")
    # The compiled runtime stamps which fetch step the fault interrupted.
    assert caught.value.step is not None
    assert caught.value.relation is not None


def test_decorators_compose(social_db):
    stacked = FaultInjectingBackend(
        LatencyInjectingBackend(social_db, access_latency=0.0001),
        FaultPlan(seed=1, transient_fault_rate=1.0, post_charge_fraction=0.0),
    )
    with pytest.raises(TransientStorageError):
        stacked.scan("friends")
    quiet = FaultInjectingBackend(
        LatencyInjectingBackend(social_db, access_latency=0.0001), FaultPlan(seed=1)
    )
    assert quiet.scan("friends") == as_backend(social_db).scan("friends")


# -- WrapperBackend + latency jitter (the shared decorator base) -------------------


def test_wrapper_backend_is_a_transparent_identity(social_db):
    backend = as_backend(social_db)
    wrapped = WrapperBackend(social_db)
    assert wrapped.inner is backend
    assert wrapped.kind == backend.kind
    assert wrapped.relation_names() == backend.relation_names()
    assert wrapped.scan("friends") == backend.scan("friends")
    assert wrapped.cardinality("friends") == backend.cardinality("friends")


def test_latency_jitter_draws_stay_in_the_window_and_replay():
    slow = LatencyInjectingBackend(
        generate_social_database(scale=0.1, seed=0),
        access_latency=0.01,
        jitter=0.5,
        seed=4,
    )
    replay = LatencyInjectingBackend(
        generate_social_database(scale=0.1, seed=0),
        access_latency=0.01,
        jitter=0.5,
        seed=4,
    )
    delays = [slow._delay() for _ in range(50)]
    assert delays == [replay._delay() for _ in range(50)]
    assert all(0.005 <= delay <= 0.015 for delay in delays)
    assert len(set(delays)) > 1  # genuinely jittered


def test_latency_jitter_zero_is_the_fixed_delay_mode():
    slow = LatencyInjectingBackend(
        generate_social_database(scale=0.1, seed=0), access_latency=0.002
    )
    assert [slow._delay() for _ in range(5)] == [0.002] * 5


def test_latency_jitter_validates_fraction():
    with pytest.raises(ApiMisuseError):
        LatencyInjectingBackend(
            generate_social_database(scale=0.1, seed=0), jitter=1.5
        )
