"""Unit tests for relation/database schemas and attribute types."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.relational import (
    Attribute,
    BoundedIntType,
    DatabaseSchema,
    EnumType,
    INT,
    RelationSchema,
    STRING,
    schema_from_mapping,
    type_from_name,
)
from repro.relational.types import ANY, FLOAT


class TestAttributeTypes:
    def test_any_accepts_everything(self):
        assert ANY.validate(1) and ANY.validate("x") and ANY.validate(None)

    def test_int_type_validation(self):
        assert INT.validate(3)
        assert not INT.validate(3.5)
        assert not INT.validate(True)  # bools are not ints for schema purposes

    def test_int_type_parse(self):
        assert INT.parse("42") == 42

    def test_float_type(self):
        assert FLOAT.validate(3.5) and FLOAT.validate(2)
        assert FLOAT.parse("2.5") == 2.5

    def test_string_type(self):
        assert STRING.validate("abc") and not STRING.validate(5)

    def test_bounded_int_domain(self):
        months = BoundedIntType(1, 12)
        assert months.domain_size == 12
        assert months.validate(12) and not months.validate(13)
        assert list(months.domain_values()) == list(range(1, 13))

    def test_bounded_int_rejects_empty_range(self):
        with pytest.raises(ValueError):
            BoundedIntType(5, 4)

    def test_bounded_int_parse_out_of_range(self):
        with pytest.raises(ValueError):
            BoundedIntType(1, 12).parse("13")

    def test_enum_type(self):
        status = EnumType(["open", "closed"])
        assert status.domain_size == 2
        assert status.validate("open") and not status.validate("pending")
        assert status.parse("closed") == "closed"

    def test_enum_requires_values(self):
        with pytest.raises(ValueError):
            EnumType([])

    def test_type_from_name(self):
        assert type_from_name("int") is INT
        assert type_from_name("str") is STRING
        with pytest.raises(ValueError):
            type_from_name("decimal")


class TestRelationSchema:
    def test_basic_construction(self):
        schema = RelationSchema("r", ["a", "b", "c"])
        assert schema.arity == 3
        assert schema.attribute_names == ("a", "b", "c")
        assert "b" in schema and "z" not in schema

    def test_typed_attributes(self):
        schema = RelationSchema("r", [("a", INT), Attribute("b", STRING), "c"])
        assert schema.attribute("a").type is INT
        assert schema.attribute("c").type is ANY

    def test_positions(self):
        schema = RelationSchema("r", ["a", "b", "c"])
        assert schema.position("c") == 2
        assert schema.positions(["c", "a"]) == (2, 0)

    def test_unknown_attribute_raises(self):
        schema = RelationSchema("r", ["a"])
        with pytest.raises(UnknownAttributeError):
            schema.position("b")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [])

    def test_project_and_rename(self):
        schema = RelationSchema("r", ["a", "b", "c"])
        projected = schema.project(["c", "a"], name="s")
        assert projected.name == "s" and projected.attribute_names == ("c", "a")
        renamed = schema.rename("t")
        assert renamed.name == "t" and renamed.attribute_names == schema.attribute_names

    def test_equality_and_hash(self):
        first = RelationSchema("r", ["a", "b"])
        second = RelationSchema("r", ["a", "b"])
        assert first == second and hash(first) == hash(second)
        assert first != RelationSchema("r", ["a"])


class TestDatabaseSchema:
    def test_construction_and_lookup(self):
        schema = schema_from_mapping({"r": ["a", "b"], "s": ["c"]})
        assert len(schema) == 2
        assert schema.relation("r").arity == 2
        assert "s" in schema and "t" not in schema

    def test_unknown_relation_raises(self):
        schema = DatabaseSchema()
        with pytest.raises(UnknownRelationError):
            schema.relation("missing")

    def test_duplicate_relation_rejected(self):
        schema = schema_from_mapping({"r": ["a"]})
        with pytest.raises(SchemaError):
            schema.add(RelationSchema("r", ["b"]))

    def test_total_attributes(self):
        schema = schema_from_mapping({"r": ["a", "b"], "s": ["c", "d", "e"]})
        assert schema.total_attributes == 5

    def test_describe_mentions_relations(self):
        schema = schema_from_mapping({"r": ["a"], "s": ["b"]})
        text = schema.describe()
        assert "r(a)" in text and "s(b)" in text
