"""Unit tests for the materialized relational-algebra operators."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    RowSet,
    difference,
    hash_join,
    product,
    project,
    rename,
    select,
    select_attr_eq,
    select_eq,
    semijoin,
    union,
)


@pytest.fixture()
def left():
    return RowSet(("a", "b"), [(1, "x"), (2, "y"), (3, "x")])


@pytest.fixture()
def right():
    return RowSet(("c", "d"), [(1, "p"), (1, "q"), (4, "r")])


class TestRowSet:
    def test_duplicate_header_rejected(self):
        with pytest.raises(SchemaError):
            RowSet(("a", "a"), [])

    def test_position_lookup(self, left):
        assert left.position("b") == 1
        with pytest.raises(SchemaError):
            left.position("z")

    def test_distinct(self):
        rows = RowSet(("a",), [(1,), (1,), (2,)]).distinct()
        assert rows.rows == [(1,), (2,)]


class TestSelection:
    def test_select_predicate(self, left):
        result = select(left, lambda row: row[0] > 1)
        assert result.rows == [(2, "y"), (3, "x")]

    def test_select_eq(self, left):
        assert select_eq(left, "b", "x").rows == [(1, "x"), (3, "x")]

    def test_select_attr_eq(self):
        rows = RowSet(("a", "b"), [(1, 1), (1, 2)])
        assert select_attr_eq(rows, "a", "b").rows == [(1, 1)]


class TestProjection:
    def test_project_distinct_by_default(self, left):
        result = project(left, ["b"])
        assert result.header == ("b",) and sorted(result.rows) == [("x",), ("y",)]

    def test_project_keep_duplicates(self, left):
        result = project(left, ["b"], distinct=False)
        assert len(result.rows) == 3

    def test_project_empty_columns_is_boolean(self, left):
        assert project(left, []).rows == [()]
        assert project(RowSet(("a",), []), []).rows == []


class TestProductAndJoin:
    def test_product(self, left, right):
        result = product(left, right)
        assert len(result.rows) == 9 and result.header == ("a", "b", "c", "d")

    def test_product_overlap_rejected(self, left):
        with pytest.raises(SchemaError):
            product(left, RowSet(("a",), [(1,)]))

    def test_hash_join(self, left, right):
        result = hash_join(left, right, [("a", "c")])
        assert sorted(result.rows) == [(1, "x", 1, "p"), (1, "x", 1, "q")]

    def test_hash_join_no_pairs_is_product(self, left, right):
        assert len(hash_join(left, right, []).rows) == 9

    def test_semijoin(self, left, right):
        result = semijoin(left, right, [("a", "c")])
        assert result.rows == [(1, "x")]
        assert semijoin(left, RowSet(("c",), []), []).rows == []


class TestSetOperators:
    def test_union(self):
        first = RowSet(("a",), [(1,), (2,)])
        second = RowSet(("a",), [(2,), (3,)])
        assert sorted(union(first, second).rows) == [(1,), (2,), (3,)]

    def test_union_header_mismatch(self):
        with pytest.raises(SchemaError):
            union(RowSet(("a",), []), RowSet(("b",), []))

    def test_difference(self):
        first = RowSet(("a",), [(1,), (2,), (3,)])
        second = RowSet(("a",), [(2,)])
        assert sorted(difference(first, second).rows) == [(1,), (3,)]

    def test_rename(self, left):
        renamed = rename(left, {"a": "x1"})
        assert renamed.header == ("x1", "b") and renamed.rows == left.rows
