"""Unit tests for CSV import/export of relations and databases."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    Database,
    INT,
    RelationSchema,
    read_database_csv,
    read_relation_csv,
    relation_from_rows,
    schema_from_mapping,
    write_database_csv,
    write_relation_csv,
)


class TestRelationCsv:
    def test_round_trip(self, tmp_path):
        relation = relation_from_rows("r", ["a", "b"], [(1, "x"), (2, "y")])
        path = write_relation_csv(relation, tmp_path / "r.csv")
        loaded = read_relation_csv(relation.schema, path)
        assert loaded.tuples() == [(1, "x"), (2, "y")]

    def test_header_reordering(self, tmp_path):
        schema = RelationSchema("r", ["a", "b"])
        path = tmp_path / "r.csv"
        path.write_text("b,a\nx,1\n")
        loaded = read_relation_csv(schema, path)
        assert loaded.tuples() == [(1, "x")]

    def test_header_mismatch_raises(self, tmp_path):
        schema = RelationSchema("r", ["a", "b"])
        path = tmp_path / "r.csv"
        path.write_text("a,c\n1,2\n")
        with pytest.raises(SchemaError):
            read_relation_csv(schema, path)

    def test_arity_mismatch_raises(self, tmp_path):
        schema = RelationSchema("r", ["a", "b"])
        path = tmp_path / "r.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError):
            read_relation_csv(schema, path)

    def test_typed_parsing(self, tmp_path):
        schema = RelationSchema("r", [("a", INT), "b"])
        path = tmp_path / "r.csv"
        path.write_text("a,b\n7,3.5\n8,hello\n")
        loaded = read_relation_csv(schema, path)
        assert loaded.tuples() == [(7, 3.5), (8, "hello")]

    def test_no_header_mode(self, tmp_path):
        schema = RelationSchema("r", ["a", "b"])
        path = tmp_path / "r.csv"
        path.write_text("1,x\n2,y\n")
        loaded = read_relation_csv(schema, path, has_header=False)
        assert len(loaded) == 2


class TestDatabaseCsv:
    def test_round_trip(self, tmp_path):
        schema = schema_from_mapping({"r": ["a"], "s": ["b", "c"]})
        database = Database.from_dict(schema, {"r": [(1,)], "s": [(2, "x")]})
        directory = write_database_csv(database, tmp_path / "db")
        loaded = read_database_csv(schema, directory)
        assert loaded.total_tuples == 2
        assert loaded.relation("s").tuples() == [(2, "x")]

    def test_missing_files_yield_empty_relations(self, tmp_path):
        schema = schema_from_mapping({"r": ["a"], "s": ["b"]})
        database = Database.from_dict(schema, {"r": [(1,)]})
        directory = write_database_csv(database, tmp_path / "db")
        (directory / "s.csv").unlink()
        loaded = read_database_csv(schema, directory)
        assert len(loaded.relation("s")) == 0 and len(loaded.relation("r")) == 1
