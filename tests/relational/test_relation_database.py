"""Unit tests for relations, databases, indexes and access accounting."""

import pytest

from repro.errors import ArityError, SchemaError, UnknownRelationError
from repro.relational import (
    AccessCounter,
    Database,
    HashIndex,
    Relation,
    RelationSchema,
    schema_from_mapping,
)


@pytest.fixture()
def people():
    schema = RelationSchema("people", ["id", "city", "age"])
    return Relation(
        schema,
        [(1, "rome", 30), (2, "rome", 41), (3, "oslo", 30), (4, "lima", 25)],
    )


class TestRelation:
    def test_insert_and_len(self, people):
        assert len(people) == 4 and people.cardinality == 4

    def test_arity_mismatch_raises(self, people):
        with pytest.raises(ArityError):
            people.insert((5, "paris"))

    def test_insert_dict(self):
        schema = RelationSchema("r", ["a", "b"])
        relation = Relation(schema)
        relation.insert_dict({"b": 2, "a": 1})
        assert relation.tuples() == [(1, 2)]
        with pytest.raises(SchemaError):
            relation.insert_dict({"a": 1})

    def test_from_dicts(self):
        schema = RelationSchema("r", ["a", "b"])
        relation = Relation.from_dicts(schema, [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert len(relation) == 2

    def test_project_and_distinct_values(self, people):
        cities = people.distinct_values(["city"])
        assert cities == {("rome",), ("oslo",), ("lima",)}
        pairs = people.project_values(["city", "age"])
        assert ("rome", 30) in pairs and len(pairs) == 4

    def test_row_dict(self, people):
        assert people.row_dict((1, "rome", 30)) == {"id": 1, "city": "rome", "age": 30}

    def test_statistics(self, people):
        stats = people.statistics()
        assert stats.cardinality == 4
        assert stats.distinct("city") == 3 and stats.distinct("id") == 4

    def test_group_cardinality(self, people):
        assert people.group_cardinality(["city"], ["id"]) == 2
        assert people.group_cardinality(["id"], ["city"]) == 1
        empty = Relation(people.schema)
        assert empty.group_cardinality(["city"], ["id"]) == 0

    def test_scan_charges_counter(self, people):
        counter = AccessCounter()
        people.attach_counter(counter)
        list(people.scan())
        assert counter.scanned == 4 and counter.scans == 1
        people.scan_filter(lambda row: row[1] == "rome")
        assert counter.scanned == 8

    def test_uncounted_paths_do_not_charge(self, people):
        counter = AccessCounter()
        people.attach_counter(counter)
        people.tuples()
        people.distinct_values(["city"])
        assert counter.total == 0


class TestHashIndex:
    def test_probe_returns_distinct_projections(self, people):
        index = HashIndex(people, key=["city"], value=["city", "age"])
        rows = index.probe(("rome",))
        assert set(rows) == {("rome", 30), ("rome", 41)}
        assert index.probe(("nowhere",)) == []

    def test_probe_counts_accesses(self, people):
        counter = AccessCounter()
        index = HashIndex(people, key=["city"], value=["age"], counter=counter)
        index.probe(("rome",))
        assert counter.index_probed == 2 and counter.lookups == 1

    def test_probe_full_returns_whole_tuples(self, people):
        index = HashIndex(people, key=["age"])
        assert set(index.probe_full((30,))) == {(1, "rome", 30), (3, "oslo", 30)}

    def test_contains_key(self, people):
        index = HashIndex(people, key=["city"])
        assert index.contains_key(("oslo",)) and not index.contains_key(("paris",))

    def test_empty_key_index(self, people):
        index = HashIndex(people, key=[], value=["city"])
        assert set(index.probe(())) == {("rome",), ("oslo",), ("lima",)}

    def test_metadata(self, people):
        index = HashIndex(people, key=["city"])
        assert index.distinct_keys == 3 and index.max_bucket_size == 2

    def test_probe_many_deduplicates(self, people):
        index = HashIndex(people, key=["city"], value=["age"])
        rows = index.probe_many([("rome",), ("oslo",), ("rome",)])
        assert sorted(rows) == [(30,), (41,)]


class TestDatabase:
    def test_build_and_insert(self):
        schema = schema_from_mapping({"r": ["a", "b"], "s": ["c"]})
        database = Database(schema)
        database.insert("r", (1, 2))
        database.extend("s", [(1,), (2,)])
        assert database.total_tuples == 3
        assert len(database.relation("r")) == 1

    def test_unknown_relation(self):
        database = Database(schema_from_mapping({"r": ["a"]}))
        with pytest.raises(UnknownRelationError):
            database.relation("missing")

    def test_from_dict_and_from_relations(self):
        schema = schema_from_mapping({"r": ["a"]})
        database = Database.from_dict(schema, {"r": [(1,), (2,)]})
        assert database.total_tuples == 2
        rebuilt = Database.from_relations(database.relations())
        assert rebuilt.total_tuples == 2

    def test_counter_shared_across_relations(self):
        schema = schema_from_mapping({"r": ["a"], "s": ["b"]})
        database = Database.from_dict(schema, {"r": [(1,)], "s": [(2,), (3,)]})
        list(database.relation("r").scan())
        list(database.relation("s").scan())
        assert database.counter.total == 3
        snapshot = database.access_snapshot()
        list(database.relation("s").scan())
        assert database.accesses_since(snapshot).scanned == 2

    def test_build_index_reuse(self):
        schema = schema_from_mapping({"r": ["a", "b"]})
        database = Database.from_dict(schema, {"r": [(1, 2), (1, 3)]})
        first = database.build_index("r", key=["a"], value=["a", "b"])
        second = database.build_index("r", key=["a"], value=["a", "b"])
        assert first is second
        assert database.find_index("r", ["a"]) is first
        assert database.find_index("r", ["b"]) is None

    def test_scaled_copy(self):
        schema = schema_from_mapping({"r": ["a"]})
        database = Database.from_dict(schema, {"r": [(i,) for i in range(100)]})
        half = database.scaled_copy(0.5)
        assert len(half.relation("r")) == 50
        with pytest.raises(SchemaError):
            database.scaled_copy(0.0)

    def test_summary_lists_relations(self):
        schema = schema_from_mapping({"r": ["a"]})
        database = Database.from_dict(schema, {"r": [(1,)]})
        assert "r: 1 tuples" in database.summary()
