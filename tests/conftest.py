"""Shared fixtures for the test suite.

The social-network scenario of Example 1 (schema, access schema A0, queries
Q0/Q1, a tiny hand-written instance) is the workhorse of the unit tests
because every claim the paper makes is illustrated on it.
"""

from __future__ import annotations

import pytest

from repro.relational import Database
from repro.workloads import (
    query_q0,
    query_q1,
    query_q2_boolean,
    social_access_schema,
    social_schema,
)


@pytest.fixture()
def schema():
    """The Example 1 schema: in_album, friends, tagging."""
    return social_schema()


@pytest.fixture()
def access_schema():
    """The Example 2 access schema A0."""
    return social_access_schema()


@pytest.fixture()
def q0():
    """Q0: photos in album a0 where u0 is tagged by a friend (effectively bounded)."""
    return query_q0(album_id="a0", user_id="u0")


@pytest.fixture()
def q1():
    """Q1: the template of Q0 with album and user uninstantiated (not eff. bounded)."""
    return query_q1()


@pytest.fixture()
def q2_boolean():
    """Q2: a Boolean query (bounded even without an access schema)."""
    return query_q2_boolean()


@pytest.fixture()
def small_social_db(schema):
    """A hand-written instance where Q0's answer is exactly {('p1',)}.

    * album a0 holds photos p1, p2; album a1 holds p3.
    * u0's friends are u1 and u2; u1 is also friends with u0.
    * p1 tags u0, tagged by friend u1 (a match);
      p2 tags u0, tagged by non-friend u3 (no match);
      p3 tags u0, tagged by friend u1, but p3 is not in album a0 (no match).
    """
    database = Database(schema)
    database.extend("in_album", [("p1", "a0"), ("p2", "a0"), ("p3", "a1")])
    database.extend("friends", [("u0", "u1"), ("u0", "u2"), ("u1", "u0")])
    database.extend(
        "tagging", [("p1", "u1", "u0"), ("p2", "u3", "u0"), ("p3", "u1", "u0")]
    )
    return database
