#!/usr/bin/env python3
"""Quickstart: Example 1 of the paper, end to end.

The scenario: a social network stores photo albums, friendships and photo
tags.  The query Q0 asks for all photos in album ``a0`` in which user ``u0``
is tagged by one of her friends.  The database may be huge, but under the
platform's limits (≤1000 photos per album, ≤5000 friends per user, one tag per
photo and taggee) the query is *effectively bounded*: it can be answered by
fetching at most 7000 tuples, no matter how big the database is.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import bcheck, ebcheck, find_dominating_parameters
from repro.execution import BoundedEngine, NaiveExecutor
from repro.spc import template_from_refs
from repro.workloads import (
    generate_social_database,
    query_q0,
    query_q1,
    social_access_schema,
)


def main() -> None:
    access_schema = social_access_schema()
    print("Access schema A0 (Example 2):")
    print(access_schema.describe())
    print()

    # ---------------------------------------------------------------- Q0 ------
    query = query_q0(album_id="a0", user_id="u0")
    print(query.describe())
    print()

    print("Is Q0 bounded under A0?      ", bcheck(query, access_schema).bounded)
    print("Is Q0 effectively bounded?   ", ebcheck(query, access_schema).effectively_bounded)

    engine = BoundedEngine(access_schema)
    report = engine.check(query)
    print(report.describe())
    print()
    print("The bounded query plan (QPlan):")
    print(report.plan.describe())
    print()

    # Generate a synthetic social network and execute both ways.
    database = generate_social_database(scale=1.0, seed=7)
    print(f"Database: {database.total_tuples} tuples")
    engine.prepare(database)

    bounded_result = engine.execute(query, database)
    naive_result = NaiveExecutor().execute(query, database)
    print(f"evalDQ : {len(bounded_result)} answers, "
          f"{bounded_result.stats.tuples_accessed} tuples accessed "
          f"({bounded_result.stats.elapsed_seconds * 1000:.2f} ms)")
    print(f"naive  : {len(naive_result)} answers, "
          f"{naive_result.stats.tuples_accessed} tuples accessed "
          f"({naive_result.stats.elapsed_seconds * 1000:.2f} ms)")
    assert bounded_result.as_set == naive_result.as_set
    print("Both strategies return the same answers.")
    print()

    # ---------------------------------------------------------------- Q1 ------
    # The template without the album/user constants is NOT effectively bounded;
    # the dominating-parameter analysis tells the application which form fields
    # must be filled in to make it so.
    template_query = query_q1()
    print("Q1 (no constants) effectively bounded?",
          ebcheck(template_query, access_schema).effectively_bounded)
    dominating = find_dominating_parameters(template_query, access_schema, alpha=3 / 7)
    names = sorted(ref.pretty(template_query.atoms) for ref in dominating.parameters)
    print("Dominating parameters suggested to the user:", names)

    template = template_from_refs(template_query, dominating.parameters)
    bound_query = template.bind(**{name: value for name, value in zip(template.parameter_names, ["a0", "u0", "u0"])})
    print("After binding them, effectively bounded?",
          ebcheck(bound_query, access_schema).effectively_bounded)


if __name__ == "__main__":
    main()
