#!/usr/bin/env python3
"""Out-of-core bounded execution: the SQLite storage backend.

The in-memory substrate caps datasets at RAM.  The storage seam
(`repro.storage`) removes that cap: executors touch data only through the
`StorageBackend` protocol, so the same engine, the same plans and the same
prepared queries run unchanged over a SQLite database — on disk if you wish —
with every access constraint mapped to a SQL index and the cardinality bound
enforced at fetch time.

This walkthrough

1. generates a TFACC instance and materializes it into SQLite,
2. serves a prepared form template from the SQLite store, showing identical
   rows and identical ``tuples_accessed`` to the in-memory path,
3. grows the SQLite database ~10x and shows the bounded access count staying
   flat while the naive full-scan baseline grows with ``|D|``.

Run with::

    python examples/sqlite_backend.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.execution import BoundedEngine
from repro.spc import ParameterizedQuery, SPCQueryBuilder
from repro.workloads import tfacc_access_schema, tfacc_schema, tfacc_workload


def accident_template() -> ParameterizedQuery:
    """Form query: severity and vehicles of accident ``$acc``."""
    query = (
        SPCQueryBuilder(tfacc_schema(), name="accident_vehicles")
        .add_atom("accident", alias="a")
        .add_atom("vehicle", alias="v")
        .where_eq("a.accident_id", "v.accident_id")
        .select("a.severity")
        .select("v.vehicle_id")
        .select("v.vehicle_type")
        .build()
    )
    return ParameterizedQuery(query, {"acc": query.ref("a", "accident_id")})


def main() -> None:
    workload = tfacc_workload()

    # ---------------------------------------------------------- two stores
    database = workload.database(scale=0.05, seed=1)
    sqlite_small = workload.to_backend("sqlite", database=database)
    # For an on-disk database, pass a file path instead:
    #   workload.to_backend("sqlite", scale=5.0, path="tfacc.sqlite3")
    print(f"in-memory instance : {database}")
    print(f"sqlite twin        : {sqlite_small}")
    print()

    # -------------------------------------- one engine, either store
    engine = BoundedEngine(tfacc_access_schema())
    template = accident_template()
    prepared = engine.prepare_query(template)      # EBCheck + QPlan run once
    prepared.warm(database)                        # hash indexes in memory
    prepared.warm(sqlite_small)                    # CREATE INDEX on SQLite
    print(f"prepared template: slots {list(prepared.slots)}, "
          f"access bound {prepared.total_bound} tuples per request")

    binding = {"acc": "acc0000007"}
    memory_result = prepared.execute(database, **binding)
    sqlite_result = prepared.execute(sqlite_small, **binding)
    print(f"  memory : {memory_result.stats.describe()}")
    print(f"  sqlite : {sqlite_result.stats.describe()}")
    assert memory_result.as_set == sqlite_result.as_set
    assert memory_result.stats.tuples_accessed == sqlite_result.stats.tuples_accessed
    print("  identical rows, identical tuples_accessed\n")

    # ------------------------- grow the SQLite database ~10x: access stays flat
    sqlite_large = workload.to_backend("sqlite", scale=0.5, seed=1)
    prepared.warm(sqlite_large)
    bindings = [{"acc": f"acc{i:07d}"} for i in range(100)]
    accessed_small = sum(
        prepared.execute(sqlite_small, **b).stats.tuples_accessed for b in bindings
    )
    accessed_large = sum(
        prepared.execute(sqlite_large, **b).stats.tuples_accessed for b in bindings
    )
    naive_small = engine.execute_naive(
        template.bind(**binding), sqlite_small
    ).stats.tuples_accessed
    naive_large = engine.execute_naive(
        template.bind(**binding), sqlite_large
    ).stats.tuples_accessed

    growth = sqlite_large.total_tuples / sqlite_small.total_tuples
    print(f"dataset growth     : {sqlite_small.total_tuples} -> "
          f"{sqlite_large.total_tuples} tuples ({growth:.1f}x)")
    print(f"bounded accesses   : {accessed_small} -> {accessed_large} "
          f"({accessed_large / accessed_small:.2f}x)  <- flat")
    print(f"naive accesses     : {naive_small} -> {naive_large} "
          f"({naive_large / naive_small:.1f}x)  <- grows with |D|")
    print()

    # -------------------------------------------------- monitoring surface
    print("engine.cache_info() after serving both stores:")
    for entry in engine.cache_info().values():
        print(f"  {entry.describe()}")


if __name__ == "__main__":
    main()
