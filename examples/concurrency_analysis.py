#!/usr/bin/env python3
"""The concurrency analyzer catching a deadlock *before* any thread runs.

A worker pool with a metrics sink is a classic two-lock shape: the pool
locks itself then tells the sink, the sink locks itself then asks the pool.
Each path is individually correct; together they deadlock the first time
two threads interleave badly — maybe once a week in production, never in a
fast test run.  The races analyzer finds the cycle statically, from the
lock-order graph, with a method witness for each edge, then the same pass
flags an unguarded counter read and a sleep held under a lock.

Run with::

    python examples/concurrency_analysis.py
"""

from __future__ import annotations

import sys
import tempfile
import textwrap
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.concurrency import CONCURRENCY_RULES, collect_guard_map
from repro.analysis.lint import lint_paths

#: A seeded deadlock: pool.submit takes pool->sink, sink.flush takes
#: sink->pool.  Plus two riders: a lock-free stats read and a sleep under
#: the pool lock.
RACY_POOL = """
    import threading
    import time


    class MetricsSink:
        def __init__(self, pool):
            self._lock = threading.Lock()
            self._pool = pool
            self._events = []

        def record(self, event):
            with self._lock:
                self._events.append(event)

        def flush(self):
            with self._lock:                  # sink lock first...
                backlog = self._pool.backlog()  # ...then the pool's (inside)
                drained = list(self._events)
                self._events = []
            return backlog, drained


    class WorkerPool:
        def __init__(self):
            self._lock = threading.Lock()
            self._sink_lock = threading.Lock()
            self._queue = []
            self._done = 0

        def submit(self, task):
            with self._lock:                  # pool lock first...
                self._queue.append(task)
                with self._sink_lock:         # ...then the sink's
                    pass

        def backlog(self):
            with self._sink_lock:
                with self._lock:              # DEADLOCK: opposite order
                    return len(self._queue)

        def finish_one(self):
            with self._lock:
                self._queue.pop()
                self._done += 1

        def stats(self):
            return self._done                 # RACE: unguarded read

        def throttle(self):
            with self._lock:
                time.sleep(0.01)              # BLOCKING under the pool lock
    """


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        target = Path(scratch) / "pool.py"
        target.write_text(textwrap.dedent(RACY_POOL))

        # ------------------------------------------------- static findings
        findings = lint_paths([target], CONCURRENCY_RULES)
        print(f"{len(findings)} finding(s) — no thread was started:\n")
        for finding in findings:
            print(f"  line {finding.line:>3}  {finding.rule}  {finding.message}")

        # The deadlock is reported as a cycle in the lock-order graph, with
        # the acquiring method as the witness for each edge.
        cycle = next(f for f in findings if f.rule == "CONC002")
        assert "self._lock -> self._sink_lock -> self._lock" in cycle.message
        print(f"\nthe deadlock, statically: {cycle.message}")

        # ------------------------------------------------- the guard map
        print("\ninferred guard map:")
        for entry in collect_guard_map([target]):
            print(
                f"  {entry['class']:>10}.{entry['attr']:<10} "
                f"guard={entry['guard'] or '—'}  ({entry['source']})"
            )


if __name__ == "__main__":
    main()
