#!/usr/bin/env python3
"""Parameterized e-commerce queries over TPC-H (the paper's Web-form scenario).

The introduction observes that "parameterized queries supported by e-commerce
systems, where users issue queries via Web forms by instantiating parameters"
are typically effectively bounded.  This example plays that scenario out on the
TPC-H-lite workload:

1. an order-status form: the customer key is a form field — effectively
   bounded once it is filled in,
2. a catalogue query that is *not* effectively bounded as written; the
   dominating-parameter analysis tells the form designer which extra field to
   add,
3. execution through the :class:`~repro.execution.engine.BoundedEngine`,
   comparing the bounded plan with the full-scan baseline.

Run with::

    python examples/ecommerce_forms.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ebcheck, find_dominating_parameters
from repro.execution import BoundedEngine, NaiveExecutor
from repro.spc import SPCQueryBuilder, template_from_refs
from repro.workloads import generate_tpch_database, tpch_access_schema, tpch_schema


def main() -> None:
    schema = tpch_schema()
    access_schema = tpch_access_schema()
    database = generate_tpch_database(scale=0.5, seed=3)
    print(f"TPC-H database: {database.total_tuples} tuples, "
          f"{access_schema.cardinality} access constraints\n")

    engine = BoundedEngine(access_schema)
    engine.prepare(database)
    naive = NaiveExecutor()

    # ------------------------------------------------------------------ form 1 --
    # "Show the line items of my recent orders": custkey comes from the session.
    order_status = (
        SPCQueryBuilder(schema, name="order_status_form")
        .add_atom("customer", alias="c")
        .add_atom("orders", alias="o")
        .add_atom("lineitem", alias="l")
        .where_const("c.c_custkey", 42)
        .where_eq("c.c_custkey", "o.o_custkey")
        .where_eq("o.o_orderkey", "l.l_orderkey")
        .select("o.o_orderkey", "l.l_linenumber", "l.l_shipmode")
        .build()
    )
    report = engine.check(order_status)
    print(report.describe())
    result = engine.execute(order_status, database)
    baseline = naive.execute(order_status, database)
    assert result.as_set == baseline.as_set
    print(f"answers: {len(result)}  |D_Q|: {result.stats.tuples_accessed} "
          f"(baseline scanned {baseline.stats.tuples_accessed})\n")

    # ------------------------------------------------------------------ form 2 --
    # "Find suppliers of a part type in a region" — with no field filled in the
    # query is not effectively bounded; the analysis suggests the fields.
    catalogue = (
        SPCQueryBuilder(schema, name="catalogue_browse")
        .add_atom("part", alias="p")
        .add_atom("partsupp", alias="ps")
        .add_atom("supplier", alias="s")
        .where_eq("p.p_partkey", "ps.ps_partkey")
        .where_eq("ps.ps_suppkey", "s.s_suppkey")
        .select("s.s_name", "ps.ps_supplycost")
        .build()
    )
    print("catalogue_browse effectively bounded as written?",
          ebcheck(catalogue, access_schema).effectively_bounded)
    dominating = find_dominating_parameters(catalogue, access_schema)
    suggested = sorted(ref.pretty(catalogue.atoms) for ref in dominating.parameters)
    print("form fields to add (dominating parameters):", suggested)

    template = template_from_refs(catalogue, dominating.parameters)
    # The shopper picks a concrete part on the form.
    bindings = {}
    for name in template.parameter_names:
        bindings[name] = 17 if "partkey" in name else 0
    instantiated = template.bind(**bindings)
    print("after filling the form, effectively bounded?",
          ebcheck(instantiated, access_schema).effectively_bounded)

    result = engine.execute(instantiated, database)
    baseline = naive.execute(instantiated, database)
    assert result.as_set == baseline.as_set
    print(f"answers: {len(result)}  |D_Q|: {result.stats.tuples_accessed} "
          f"(baseline scanned {baseline.stats.tuples_accessed})")


if __name__ == "__main__":
    main()
