#!/usr/bin/env python3
"""The multi-process sharded serving tier.

Example 1's form query served by :class:`~repro.sharding.ShardedQueryService`:
a router partitions the data across shard *processes* by a process-stable
hash of the partition key, proves per template that single-shard answers are
byte-identical to unsharded ones, and uses the paper's a-priori Σ Mᵢ bound
to cost and admit every request *before* any cross-process dispatch.

Run with::

    python examples/sharded_service.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import BoundedEngine
from repro.errors import BudgetExceededError, ShardRoutingError
from repro.sharding import ShardMap, ShardedQueryService
from repro.spc import ParameterizedQuery
from repro.workloads import generate_social_database, query_q1, social_access_schema


def main() -> None:
    # ------------------------------------------------------- template + data
    q1 = query_q1()
    template = ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )
    database = generate_social_database(scale=1.0, seed=7)
    access = social_access_schema()

    # The placement is derived from the template's own plan: its first fetch
    # constrains in_album on album_id, so in_album is partitioned on album_id
    # and every other relation is replicated.  The hash is process-stable
    # (BLAKE2b, not the per-process-salted builtin), so the router and every
    # shard child agree on placement forever.
    shard_map = ShardMap.for_template(template, access, num_shards=4)
    print(f"placement: {shard_map.partitioned} over {shard_map.num_shards} shards")

    # ---------------------------------------------------------- the service
    with ShardedQueryService(
        database, access, shard_map=shard_map, shard_workers=1
    ) as service:
        requests = [
            {"album": f"a{i % 80}", "user": f"u{i % 200}"} for i in range(400)
        ]
        started = time.perf_counter()
        results = service.run_many(template, requests)
        elapsed = time.perf_counter() - started
        print(
            f"served {len(requests)} requests across 4 shard processes in "
            f"{elapsed * 1000:.0f} ms ({len(requests) / elapsed:,.0f} req/s)"
        )

        # The charging contract survives the process boundary: the summed
        # per-request |D_Q| equals what a single unsharded engine charges,
        # and every request stayed under its proven certificate.
        engine = BoundedEngine(access)
        prepared = engine.prepare_query(template)
        charge = sum(r.stats.tuples_accessed for r in results)
        print(
            f"summed |D_Q| = {charge} tuples, every request ≤ the proven "
            f"Σ Mᵢ = {prepared.certificate.total_bound}"
        )

        # Admission control happens in the router, before any IPC: a request
        # whose certified bound cannot fit is shed with a typed error and the
        # shard processes never see it.
        try:
            service.run(template, album="a0", user="u0", budget=1)
        except BudgetExceededError as error:
            print(f"budget of 1 tuple rejected: {error}")

        stats = service.stats()
        print(f"routed per shard: {stats['routed']}")
        print(service.describe())

    # A template the router cannot *prove* single-shard-correct is refused
    # with a typed error at registration time — never a silent partial answer.
    bad_map = ShardMap(num_shards=4, partitioned={"tagging": ("photo_id",)})
    with ShardedQueryService(database, access, shard_map=bad_map) as service:
        try:
            service.run(template, album="a0", user="u0")
        except ShardRoutingError as error:
            print(f"unroutable template refused: {error}")


if __name__ == "__main__":
    main()
