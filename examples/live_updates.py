#!/usr/bin/env python3
"""The live write path: versioned stores served while the data changes.

Until PR 9 the store was frozen at ``prepare()`` time.  This walkthrough
shows what changed:

1. a `QueryService` answers a prepared form template, each result stamped
   with the ``data_version`` it observed;
2. `service.apply_writes` commits an atomic batch of inserts and deletes —
   indexes are maintained incrementally (only the touched buckets rebuild)
   and every serving cache is invalidated *scoped* to the written relations;
3. the next answer reflects the write, the version stamp advances by exactly
   one per committed batch, and the access bound Σ Mᵢ still holds;
4. the same write applied through a 2-shard `ShardedQueryService`: the
   router slices the batch by partition key, replicated relations fan out,
   and the merged counts agree with the single-process service.

Run with::

    python examples/live_updates.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import QueryService
from repro.sharding import ShardMap, ShardedQueryService
from repro.spc import ParameterizedQuery
from repro.storage import as_backend
from repro.workloads import generate_social_database, query_q1, social_access_schema


def form_template() -> ParameterizedQuery:
    """Example 1's form: photos in album ``$album`` tagging ``$user``'s friends."""
    q1 = query_q1()
    return ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )


def main() -> None:
    database = generate_social_database(scale=0.5, seed=3)
    access = social_access_schema()
    backend = as_backend(database)
    template = form_template()

    # Craft an observable write from the data: take an existing tag whose
    # tagger IS a friend of the taggee (so the tag is in Q1's answer), then
    # remove and restore that friendship — the join edge — live.
    edges = set(database.relation("friends").tuples())
    photo, tagger, taggee = next(
        row for row in database.relation("tagging").tuples()
        if (row[2], row[1]) in edges
    )
    album = dict(database.relation("in_album").tuples())[photo]
    binding = {"album": album, "user": taggee}

    with QueryService(backend, access, workers=2) as service:
        before = service.submit(template, **binding).result()
        print(f"store version {before.details['data_version']}: "
              f"{len(before.rows.rows)} rows, "
              f"|D_Q| = {before.stats.tuples_accessed} "
              f"(bound {before.stats.plan_bound})")

        # ------------------------------------------- one atomic write batch
        counts = service.apply_writes(deletes={"friends": [(taggee, tagger)]})
        print(f"committed {counts}: friendship ({taggee}, {tagger}) removed")

        after = service.submit(template, **binding).result()
        print(f"store version {after.details['data_version']}: "
              f"{len(after.rows.rows)} rows, "
              f"|D_Q| = {after.stats.tuples_accessed} "
              f"(bound {after.stats.plan_bound})")

        assert after.details["data_version"] == before.details["data_version"] + 1
        assert len(after.rows.rows) < len(before.rows.rows)
        assert after.stats.tuples_accessed <= after.stats.plan_bound
        print("  one version bump, the joined rows vanished, "
              "certificate still holds")

        # ------------------------------------------------ and back again
        service.apply_writes(inserts={"friends": [(taggee, tagger)]})
        restored = service.submit(template, **binding).result()
        assert len(restored.rows.rows) == len(before.rows.rows)
        print(f"after re-adding the friendship: "
              f"back to {len(restored.rows.rows)} rows")
        print(f"service stats: write_batches={service.stats()['write_batches']}, "
              f"rows_written={service.stats()['rows_written']}\n")

    # -------------------------------------------------- the sharded write path
    shard_map = ShardMap(2, {"in_album": ("album_id",)})
    with ShardedQueryService(database, access, shard_map=shard_map) as sharded:
        counts = sharded.apply_writes(
            deletes={"friends": [(taggee, tagger)]},  # replicated: fans out
        )
        print(f"sharded commit {counts} "
              f"(replicated relation, counted once, applied on every shard)")
        result = sharded.submit(template, **binding).result()
        assert result.as_set == after.as_set
        per_shard = sharded.shard_stats()
        for shard in sorted(per_shard):
            stats = per_shard[shard]
            print(f"  shard {shard}: write_batches={stats['write_batches']}, "
                  f"rows_written={stats['rows_written']}")
        print("sharded answer identical to the thread-tier answer")


if __name__ == "__main__":
    main()
