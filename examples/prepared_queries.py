#!/usr/bin/env python3
"""Prepared queries: serving a parameterized form at cached-plan cost.

The scenario is Example 1's form query: "photos in album $album in which user
$user is tagged by a friend".  A web tier serves this template thousands of
times per second with different constants.  Naively, every request builds a
new SPC query and the engine re-proves effective boundedness and re-plans it;
with a *prepared* query the template is compiled exactly once and each request
only substitutes its values into the plan's parameter slots.

Run with::

    python examples/prepared_queries.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.execution import BoundedEngine
from repro.spc import ParameterizedQuery
from repro.workloads import generate_social_database, query_q1, social_access_schema


def main() -> None:
    access_schema = social_access_schema()

    # ------------------------------------------------------------ the template
    # Q1 is Q0 with the album and user left open: a form, not a query.
    q1 = query_q1()
    template = ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )
    print("The form template:")
    print(q1.describe())
    print(f"parameters: {list(template.parameter_names)}")
    print()

    # ------------------------------------------------------------- compilation
    # prepare_query runs EBCheck and QPlan once, against *symbolic* constants;
    # the resulting plan carries named parameter slots instead of values.
    engine = BoundedEngine(access_schema)
    prepared = engine.prepare_query(template)
    print("Compiled once into a prepared plan:")
    print(prepared.describe())
    print()
    print(
        f"Every binding is answered within {prepared.total_bound} tuples — "
        "the bound is stated before any request arrives."
    )
    print()

    # ----------------------------------------------------------------- serving
    database = generate_social_database(scale=1.0, seed=7)
    prepared.warm(database)  # pre-build the constraint indexes

    requests = [
        {"album": f"a{i % 80}", "user": f"u{i % 200}"} for i in range(500)
    ]
    started = time.perf_counter()
    answers = [prepared.execute(database, **request) for request in requests]
    elapsed = time.perf_counter() - started
    print(
        f"Served {len(requests)} requests in {elapsed * 1000:.1f} ms "
        f"({len(requests) / elapsed:,.0f} QPS), "
        f"max |D_Q| = {max(a.stats.tuples_accessed for a in answers)} tuples"
    )

    # The same requests through the unprepared path, for comparison: every
    # bind() yields a structurally new query, so the engine re-plans each one.
    started = time.perf_counter()
    for request in requests:
        engine.execute(template.bind(**request), database)
    unprepared = time.perf_counter() - started
    print(
        f"Unprepared (re-planning) path: {unprepared * 1000:.1f} ms "
        f"({unprepared / elapsed:.1f}x slower)"
    )
    print()

    # -------------------------------------------------- cache introspection
    print("Engine cache counters after the serving loop:")
    for stats in engine.cache_info().values():
        print(f"  {stats.describe()}")


if __name__ == "__main__":
    main()
