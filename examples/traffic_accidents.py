#!/usr/bin/env python3
"""Traffic-accident analytics over the TFACC workload (Section 6's real-life dataset).

The scenario the paper motivates: an analyst asks "which vehicles were
involved in accidents on a given day, and what casualties did they cause?" on
a dataset of tens of gigabytes.  Under the access schema extracted from the
data (at most 610 accidents per day, at most 192 vehicles per accident, keys
on the id columns), such queries are effectively bounded and can be answered
by fetching a few thousand tuples.

Run with::

    python examples/traffic_accidents.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.execution import BoundedEngine, NaiveExecutor
from repro.spc import SPCQueryBuilder, parse_query
from repro.workloads import generate_tfacc_database, tfacc_access_schema, tfacc_schema


def build_queries(schema):
    """Three analyst queries of increasing shape complexity."""
    vehicles_on_day = (
        SPCQueryBuilder(schema, name="vehicles_on_day")
        .add_atom("accident", alias="a")
        .add_atom("vehicle", alias="v")
        .where_const("a.date", "2004-03-05")
        .where_eq("a.accident_id", "v.accident_id")
        .select("v.vehicle_id", "v.vehicle_type")
        .build()
    )

    casualties_of_accident = parse_query(
        """
        SELECT c.casualty_id, c.severity
        FROM accident AS a, vehicle AS v, casualty AS c
        WHERE a.accident_id = 'acc0000042'
          AND a.accident_id = v.accident_id
          AND v.vehicle_id = c.vehicle_id
        """,
        schema,
        name="casualties_of_accident",
    )

    stops_near_accidents_on_day = (
        SPCQueryBuilder(schema, name="stops_near_accidents_on_day")
        .add_atom("accident", alias="a")
        .add_atom("accident_stop", alias="link")
        .add_atom("naptan_stop", alias="s")
        .where_const("a.date", "2004-06-13")
        .where_eq("a.accident_id", "link.accident_id")
        .where_eq("link.stop_id", "s.stop_id")
        .select("s.common_name", "s.stop_type")
        .build()
    )
    return [vehicles_on_day, casualties_of_accident, stops_near_accidents_on_day]


def main() -> None:
    schema = tfacc_schema()
    access_schema = tfacc_access_schema()
    print(f"TFACC schema: {len(schema)} tables, {schema.total_attributes} attributes")
    print(f"Access schema: {access_schema.cardinality} constraints\n")

    database = generate_tfacc_database(scale=0.5, seed=11)
    print(f"Generated database: {database.total_tuples} tuples\n")

    engine = BoundedEngine(access_schema)
    engine.prepare(database)
    naive = NaiveExecutor()

    for query in build_queries(schema):
        report = engine.check(query)
        print(f"--- {query.name} ---")
        print(report.describe())
        result = engine.execute(query, database)
        baseline = naive.execute(query, database)
        assert result.as_set == baseline.as_set
        print(
            f"answers: {len(result)}  |D_Q|: {result.stats.tuples_accessed} tuples  "
            f"(baseline scanned {baseline.stats.tuples_accessed})"
        )
        print(
            f"evalDQ {result.stats.elapsed_seconds * 1000:.2f} ms vs "
            f"baseline {baseline.stats.elapsed_seconds * 1000:.2f} ms\n"
        )


if __name__ == "__main__":
    main()
