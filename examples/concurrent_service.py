#!/usr/bin/env python3
"""The concurrent serving layer over a SQLite store.

Example 1's form query as a *service*: the template is compiled once, the
data lives out-of-core in SQLite (one connection per worker thread), and a
:class:`~repro.service.QueryService` worker pool serves a burst of requests
with admission control, per-request deadlines and bounded-access budgets.

Run with::

    python examples/concurrent_service.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import BudgetExceededError, ServiceTimeout
from repro.service import QueryService
from repro.spc import ParameterizedQuery
from repro.storage import SQLiteBackend
from repro.workloads import generate_social_database, query_q1, social_access_schema


def main() -> None:
    # ------------------------------------------------------- template + store
    q1 = query_q1()
    template = ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )
    database = generate_social_database(scale=1.0, seed=7)
    backend = SQLiteBackend.from_database(database)  # out-of-core store
    print(f"store: {backend!r}")

    # ------------------------------------------------------------ the service
    with QueryService(backend, social_access_schema(), workers=4) as service:
        # A burst of distinct form submissions, admitted all at once; the
        # worker pool drains them with same-template micro-batching.
        requests = [
            {"album": f"a{i % 80}", "user": f"u{i % 200}"} for i in range(400)
        ]
        started = time.perf_counter()
        results = service.run_many(template, requests)
        elapsed = time.perf_counter() - started
        print(
            f"served {len(requests)} requests with 4 workers in "
            f"{elapsed * 1000:.0f} ms ({len(requests) / elapsed:,.0f} req/s)"
        )
        print(
            f"max |D_Q| = {max(r.stats.tuples_accessed for r in results)} tuples "
            f"(every request bounded a priori)"
        )

        # A request with an impossible access budget fails *typed*, before
        # touching any data — the counter never exceeds the budget.
        try:
            service.run(template, album="a0", user="u0", budget=1)
        except BudgetExceededError as error:
            print(f"budget of 1 tuple rejected: {error}")

        # A request with a zero deadline resolves to ServiceTimeout — typed,
        # never a half-built row set.
        try:
            service.run(template, album="a0", user="u0", deadline=0.0)
        except ServiceTimeout as error:
            print(f"zero deadline timed out: {error}")

        print(service.describe())
    backend.close()


if __name__ == "__main__":
    main()
