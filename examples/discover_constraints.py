#!/usr/bin/env python3
"""Discovering an access schema from data, then using it for bounded evaluation.

Section 2 notes that access constraints "can be deduced from FDs, attributes
with bounded domains, and the semantics of real-life data", and Section 6
extracts them "by examining the size of the active domains and dependencies of
the attributes".  This example runs that pipeline on the MOT workload:

1. profile the generated instance to discover FDs, bounded domains and
   candidate relationship fan-outs,
2. verify the instance satisfies the discovered schema,
3. check which analyst queries become effectively bounded under it, and
4. execute one of them with the bounded plan.

Run with::

    python examples/discover_constraints.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.access import discover_access_schema, satisfies
from repro.execution import BoundedEngine, NaiveExecutor
from repro.spc import SPCQueryBuilder
from repro.workloads import generate_mot_database, mot_schema


def main() -> None:
    schema = mot_schema()
    database = generate_mot_database(scale=0.4, seed=5)
    print(f"MOT database: {database.total_tuples} tuples\n")

    # Discovery: bounded domains + FDs + profiled fan-outs for candidates we
    # know matter (tests per vehicle, items per test, garages per postcode).
    discovered = discover_access_schema(
        database,
        max_domain=80,
        max_fd_lhs=1,
        candidates={
            "mot_test": [
                (["vehicle_id"], ["test_id"]),
                (["test_id"], ["test_item_id"]),
                (["test_item_id"], list(schema.relation("mot_test").attribute_names)),
            ],
            "garage": [
                (["postcode_area"], ["garage_id"]),
                (["garage_id"], list(schema.relation("garage").attribute_names)),
            ],
        },
        slack=0.5,
    )
    print(f"Discovered {discovered.cardinality} access constraints; a sample:")
    for constraint in discovered.constraints()[:8]:
        print(f"  {constraint}")
    print()
    print("Does the instance satisfy the discovered schema?", satisfies(database, discovered))
    print()

    # An inspector's query: all failed items recorded for one vehicle.
    failed_items = (
        SPCQueryBuilder(schema, name="failed_items_for_vehicle")
        .add_atom("mot_test", alias="m")
        .where_const("m.vehicle_id", "v0000012")
        .where_const("m.test_result", "fail")
        .select("m.test_id", "m.item_category", "m.item_severity")
        .build()
    )

    engine = BoundedEngine(discovered)
    engine.prepare(database)
    report = engine.check(failed_items)
    print(report.describe())

    result = engine.execute(failed_items, database)
    baseline = NaiveExecutor().execute(failed_items, database)
    assert result.as_set == baseline.as_set
    print(f"answers: {len(result)}  |D_Q|: {result.stats.tuples_accessed} tuples "
          f"(baseline scanned {baseline.stats.tuples_accessed})")


if __name__ == "__main__":
    main()
