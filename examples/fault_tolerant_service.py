#!/usr/bin/env python3
"""Fault-tolerant serving: chaos at the storage seam, resilience in the service.

Example 1's form query served from SQLite through a deterministic fault
storm: a seeded :class:`~repro.storage.FaultPlan` makes 10% of storage
accesses fail transiently, and the service rides it out with charge-safe
retries — every answer byte-identical to the fault-free run, every request
still within its plan certificate's access bound. Then a relation goes
*down*: the per-relation circuit breaker trips, and graceful degradation
serves stale and partial answers (explicitly marked) until the outage ends.

Run with::

    python examples/fault_tolerant_service.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import (
    BreakerConfig,
    DegradationPolicy,
    DegradedResult,
    QueryService,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.spc import ParameterizedQuery
from repro.storage import FaultInjectingBackend, FaultPlan, SeededJitter, SQLiteBackend
from repro.workloads import generate_social_database, query_q1, social_access_schema


def main() -> None:
    # ------------------------------------------------------- template + store
    q1 = query_q1()
    template = ParameterizedQuery(
        q1, {"album": q1.ref("ia", "album_id"), "user": q1.ref("f", "user_id")}
    )
    database = generate_social_database(scale=1.0, seed=7)
    sqlite = SQLiteBackend.from_database(database)

    # The storm: 10% of accesses fail transiently, half *after* the access
    # was charged — the hard case for the charging contract. The schedule is
    # seeded (worker interleaving decides which request draws which fault).
    plan = FaultPlan(seed=11, transient_fault_rate=0.10, post_charge_fraction=0.5)
    backend = FaultInjectingBackend(sqlite, plan)
    print(f"store: {sqlite!r}")
    print(f"chaos: 10% transient faults, seeded (plan stats so far: {plan.stats()})")

    storm_policy = ResiliencePolicy(
        retry=RetryPolicy(
            max_attempts=6,
            base_delay=0.001,
            max_delay=0.01,
            rng=SeededJitter(11).uniform,
        ),
    )

    # ---------------------------------------------- riding out the transients
    with QueryService(backend, social_access_schema(), workers=4,
                      resilience=storm_policy) as service:
        requests = [
            {"album": f"a{i % 80}", "user": f"u{i % 200}"} for i in range(400)
        ]
        started = time.perf_counter()
        futures = [service.submit(template, **params) for params in requests]
        results = [f.result() for f in futures if f.exception() is None]
        elapsed = time.perf_counter() - started
        retries = service.stats()["execution"]["retries"]
        bound = max(r.stats.plan_bound for r in results)
        print(
            f"served {len(results)}/{len(requests)} requests through the storm "
            f"in {elapsed * 1000:.0f} ms, spending {retries} retries "
            f"({len(results) / len(requests):.1%} availability)"
        )
        print(
            f"max |D_Q| = {max(r.stats.tuples_accessed for r in results)} tuples, "
            f"certificate bound {bound} — failed attempts rolled back, the "
            f"charge never inflates"
        )
        print(service.describe())

    # ------------------------------------ an outage: breaker + degradation
    # A second service over a quiet plan whose only misbehavior is the
    # persistent outage we toggle, so the recovery story is deterministic.
    outage_plan = FaultPlan(seed=0)
    outage_policy = ResiliencePolicy(
        breaker=BreakerConfig(failure_threshold=3, reset_timeout=1.0),
        degradation=DegradationPolicy(),
    )
    with QueryService(FaultInjectingBackend(sqlite, outage_plan),
                      social_access_schema(), workers=2,
                      resilience=outage_policy) as service:
        fresh = service.run(template, album="a0", user="u2")
        plan_steps = fresh.stats.tuples_accessed
        outage_plan.fail_relation("friends")  # the relation goes down

        stale = service.run(template, album="a0", user="u2")
        assert isinstance(stale, DegradedResult) and stale.tuples == fresh.tuples
        print(f"outage on 'friends' -> {stale.describe()}")

        partial = service.run(template, album="a3", user="u900")  # never cached
        assert isinstance(partial, DegradedResult)
        print(f"uncached binding  -> {partial.describe()}")

        # Repeated failures trip the breaker: requests are refused at
        # admission (no storage round-trips burned) until the reset timeout
        # lets a probe through.
        for _ in range(8):
            service.run(template, album="a1", user="u1")
        print(f"breakers: {service.stats()['breakers']}")

        outage_plan.restore_relation("friends")
        time.sleep(1.1)  # past the breaker's reset timeout: probe re-admits
        recovered = service.run(template, album="a0", user="u2")
        assert not recovered.degraded and recovered.tuples == fresh.tuples
        assert recovered.stats.tuples_accessed == plan_steps
        print("relation restored -> breaker probe succeeded, serving fresh again")

        print(service.describe())
    sqlite.close()


if __name__ == "__main__":
    main()
